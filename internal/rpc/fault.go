package rpc

import (
	"sync"

	"redbud/internal/sim"
)

// FaultRates are the per-op-class injection probabilities.
type FaultRates struct {
	// Drop is the probability the request is lost before reaching the
	// server (the server never executes it).
	Drop float64
	// RespDrop is the probability the response is lost after the server
	// executed the request — the case the endpoints' replay cache exists
	// for.
	RespDrop float64
	// Error is the probability of a transient server/transport failure
	// (returned as a retriable *Error without executing the request).
	Error float64
	// Delay is the probability the exchange is slowed by a uniformly
	// random extra latency in (0, MaxDelayNs].
	Delay float64
	// MaxDelayNs bounds the injected delay.
	MaxDelayNs sim.Ns
}

// FaultConfig seeds the deterministic fault injector and sets the rates
// per op class. All randomness comes from one sim.Rand seeded here —
// never from global math/rand state — so a faulty run replays
// bit-identically.
type FaultConfig struct {
	Seed    uint64
	Meta    FaultRates
	Data    FaultRates
	Control FaultRates
	// Crashes schedules deterministic endpoint crashes (blackholes): each
	// plan fires once, in order, per address. Endpoints without a plan
	// crash only through the manual Crash/Revive API.
	Crashes []CrashPlan
	// MaxDownCalls bounds the seeded outage length drawn for plans that
	// leave DownForCalls zero (default 64).
	MaxDownCalls int64
}

// CrashPlan schedules one crash of one endpoint. Unlike the per-op
// probabilistic faults, a crashed endpoint drops *every* request — meta,
// data, and control alike — until it revives, so the client sees a solid
// wall of timeouts rather than sporadic loss.
type CrashPlan struct {
	// Addr is the endpoint to crash.
	Addr string
	// AfterCalls arms the crash after this many transport attempts have
	// been carried toward the endpoint (retries included); attempt
	// AfterCalls+1 is the first one blackholed. Zero crashes immediately.
	AfterCalls int64
	// DownForCalls revives the endpoint after this many blackholed
	// attempts. Zero draws the outage length from the seeded RNG in
	// [1, MaxDownCalls] — the "seeded revive schedule".
	DownForCalls int64
}

// crashState is the per-endpoint blackhole state.
type crashState struct {
	crashed    bool
	auto       bool  // revive automatically after downFor dropped attempts
	downFor    int64 // resolved outage length (auto mode)
	droppedRun int64 // attempts dropped in the current outage
	attempts   int64 // transport attempts carried toward the endpoint
	plans      []CrashPlan
}

// UniformFaults is the tooling shorthand: every class drops requests at
// rate p and responses at p/2, with no errors or delays.
func UniformFaults(seed uint64, p float64) FaultConfig {
	r := FaultRates{Drop: p, RespDrop: p / 2}
	return FaultConfig{Seed: seed, Meta: r, Data: r, Control: r}
}

// rates returns the class's configured rates.
func (c *FaultConfig) rates(cl Class) FaultRates {
	switch cl {
	case ClassMeta:
		return c.Meta
	case ClassData:
		return c.Data
	default:
		return c.Control
	}
}

// FaultTransport injects message loss, transient errors, and delays into
// the transport beneath it, deterministically from the seeded RNG. It
// draws a fixed number of variates per call, so the fault sequence
// depends only on the call sequence.
type FaultTransport struct {
	next Transport
	cfg  FaultConfig
	sh   *shared

	mu    sync.Mutex
	rng   *sim.Rand
	crash map[string]*crashState
}

// NewFaultTransport wraps next with the configured injector.
func NewFaultTransport(next Transport, cfg FaultConfig) *FaultTransport {
	t := &FaultTransport{
		next:  next,
		cfg:   cfg,
		sh:    joinStack(next),
		rng:   sim.NewRand(cfg.Seed),
		crash: make(map[string]*crashState),
	}
	for _, p := range cfg.Crashes {
		st := t.crashStateLocked(p.Addr)
		st.plans = append(st.plans, p)
	}
	return t
}

// crashStateLocked returns (allocating on demand) the endpoint's blackhole
// state. Construction and the mu-serialized call path are the only
// callers.
func (t *FaultTransport) crashStateLocked(addr string) *crashState {
	st, ok := t.crash[addr]
	if !ok {
		st = &crashState{}
		t.crash[addr] = st
	}
	return st
}

// Crash blackholes the endpoint: every subsequent request to addr is
// dropped before reaching the server, until Revive. Manual crashes never
// auto-revive.
func (t *FaultTransport) Crash(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.crashStateLocked(addr)
	st.crashed, st.auto, st.droppedRun = true, false, 0
}

// Revive lifts a blackhole (manual or scheduled). The caller owns any
// server-side restart semantics; the transport only reopens the path.
func (t *FaultTransport) Revive(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st, ok := t.crash[addr]; ok {
		st.crashed, st.auto, st.droppedRun = false, false, 0
	}
}

// Crashed reports whether addr is currently blackholed.
func (t *FaultTransport) Crashed(addr string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.crash[addr]
	return ok && st.crashed
}

// crashDrop advances the endpoint's crash schedule by one attempt and
// reports whether this attempt is blackholed. Scheduled outages resolve
// their length from the seeded RNG when they fire, so the whole
// crash/revive timeline is a pure function of the config and the call
// sequence.
func (t *FaultTransport) crashDrop(addr string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.crash[addr]
	if !ok {
		return false
	}
	st.attempts++
	if !st.crashed && len(st.plans) > 0 && st.attempts > st.plans[0].AfterCalls {
		p := st.plans[0]
		st.plans = st.plans[1:]
		st.crashed, st.auto, st.droppedRun = true, true, 0
		st.downFor = p.DownForCalls
		if st.downFor <= 0 {
			max := t.cfg.MaxDownCalls
			if max <= 0 {
				max = 64
			}
			st.downFor = 1 + t.rng.Int63n(max)
		}
	}
	if !st.crashed {
		return false
	}
	if st.auto && st.droppedRun >= st.downFor {
		st.crashed, st.auto, st.droppedRun = false, false, 0
		return false
	}
	st.droppedRun++
	return true
}

// sharedState exposes the stack state to decorators.
func (t *FaultTransport) sharedState() *shared { return t.sh }

// draw samples the per-call variates under the lock (calls are serialized
// by the mount, but the lock keeps the injector safe under the race
// detector's eyes too).
func (t *FaultTransport) draw() (drop, respDrop, errp, delayp, delayFrac float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Float64(), t.rng.Float64(), t.rng.Float64(), t.rng.Float64(), t.rng.Float64()
}

// Call injects at most one fault per attempt: request loss, transient
// error, or response loss, plus an optional delay on exchanges that reach
// the server.
func (t *FaultTransport) Call(addr string, xid uint64, req Request) (Msg, error) {
	op := req.RPCOp()
	if t.crashDrop(addr) {
		t.sh.m.fault(t.sh.tracer.Now(), "blackhole", op)
		return nil, &dropError{response: false}
	}
	r := t.cfg.rates(op.Class())
	drop, respDrop, errp, delayp, delayFrac := t.draw()
	if drop < r.Drop {
		t.sh.m.fault(t.sh.tracer.Now(), "drop", op)
		return nil, &dropError{response: false}
	}
	if errp < r.Error {
		t.sh.m.fault(t.sh.tracer.Now(), "error", op)
		return nil, &Error{Op: op, Addr: addr, Kind: KindUnavailable}
	}
	if delayp < r.Delay && r.MaxDelayNs > 0 {
		t.sh.m.fault(t.sh.tracer.Now(), "delay", op)
		t.sh.advance(sim.Ns(delayFrac*float64(r.MaxDelayNs)) + 1)
	}
	resp, err := t.next.Call(addr, xid, req)
	if err == nil && respDrop < r.RespDrop {
		t.sh.m.fault(t.sh.tracer.Now(), "resp-drop", op)
		return nil, &dropError{response: true}
	}
	return resp, err
}
