package rpc

import (
	"sync"

	"redbud/internal/sim"
)

// FaultRates are the per-op-class injection probabilities.
type FaultRates struct {
	// Drop is the probability the request is lost before reaching the
	// server (the server never executes it).
	Drop float64
	// RespDrop is the probability the response is lost after the server
	// executed the request — the case the endpoints' replay cache exists
	// for.
	RespDrop float64
	// Error is the probability of a transient server/transport failure
	// (returned as a retriable *Error without executing the request).
	Error float64
	// Delay is the probability the exchange is slowed by a uniformly
	// random extra latency in (0, MaxDelayNs].
	Delay float64
	// MaxDelayNs bounds the injected delay.
	MaxDelayNs sim.Ns
}

// FaultConfig seeds the deterministic fault injector and sets the rates
// per op class. All randomness comes from one sim.Rand seeded here —
// never from global math/rand state — so a faulty run replays
// bit-identically.
type FaultConfig struct {
	Seed    uint64
	Meta    FaultRates
	Data    FaultRates
	Control FaultRates
}

// UniformFaults is the tooling shorthand: every class drops requests at
// rate p and responses at p/2, with no errors or delays.
func UniformFaults(seed uint64, p float64) FaultConfig {
	r := FaultRates{Drop: p, RespDrop: p / 2}
	return FaultConfig{Seed: seed, Meta: r, Data: r, Control: r}
}

// rates returns the class's configured rates.
func (c *FaultConfig) rates(cl Class) FaultRates {
	switch cl {
	case ClassMeta:
		return c.Meta
	case ClassData:
		return c.Data
	default:
		return c.Control
	}
}

// FaultTransport injects message loss, transient errors, and delays into
// the transport beneath it, deterministically from the seeded RNG. It
// draws a fixed number of variates per call, so the fault sequence
// depends only on the call sequence.
type FaultTransport struct {
	next Transport
	cfg  FaultConfig
	sh   *shared

	mu  sync.Mutex
	rng *sim.Rand
}

// NewFaultTransport wraps next with the configured injector.
func NewFaultTransport(next Transport, cfg FaultConfig) *FaultTransport {
	return &FaultTransport{next: next, cfg: cfg, sh: joinStack(next), rng: sim.NewRand(cfg.Seed)}
}

// sharedState exposes the stack state to decorators.
func (t *FaultTransport) sharedState() *shared { return t.sh }

// draw samples the per-call variates under the lock (calls are serialized
// by the mount, but the lock keeps the injector safe under the race
// detector's eyes too).
func (t *FaultTransport) draw() (drop, respDrop, errp, delayp, delayFrac float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rng.Float64(), t.rng.Float64(), t.rng.Float64(), t.rng.Float64(), t.rng.Float64()
}

// Call injects at most one fault per attempt: request loss, transient
// error, or response loss, plus an optional delay on exchanges that reach
// the server.
func (t *FaultTransport) Call(addr string, xid uint64, req Request) (Msg, error) {
	op := req.RPCOp()
	r := t.cfg.rates(op.Class())
	drop, respDrop, errp, delayp, delayFrac := t.draw()
	if drop < r.Drop {
		t.sh.m.fault(t.sh.tracer.Now(), "drop", op)
		return nil, &dropError{response: false}
	}
	if errp < r.Error {
		t.sh.m.fault(t.sh.tracer.Now(), "error", op)
		return nil, &Error{Op: op, Addr: addr, Kind: KindUnavailable}
	}
	if delayp < r.Delay && r.MaxDelayNs > 0 {
		t.sh.m.fault(t.sh.tracer.Now(), "delay", op)
		t.sh.advance(sim.Ns(delayFrac*float64(r.MaxDelayNs)) + 1)
	}
	resp, err := t.next.Call(addr, xid, req)
	if err == nil && respDrop < r.RespDrop {
		t.sh.m.fault(t.sh.tracer.Now(), "resp-drop", op)
		return nil, &dropError{response: true}
	}
	return resp, err
}
