package rpc

import (
	"errors"
	"strings"
	"testing"

	"redbud/internal/core"
	"redbud/internal/inode"
	"redbud/internal/mdfs"
	"redbud/internal/mds"
	"redbud/internal/netsim"
	"redbud/internal/ost"
	"redbud/internal/telemetry"
)

func newMDS(t *testing.T) *mds.Server {
	t.Helper()
	srv, err := mds.New(mds.DefaultConfig(mdfs.LayoutEmbedded))
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func vanillaFactory(src core.BlockSource, _ int64) core.Policy {
	return core.NewVanilla(src)
}

// counterValue sums a counter's snapshot values across label sets,
// optionally filtered by a labels substring.
func counterValue(reg *telemetry.Registry, name, labelPart string) int64 {
	var total int64
	for _, s := range reg.Snapshot() {
		if s.Name == name && (labelPart == "" || strings.Contains(s.Labels, labelPart)) {
			total += s.Value
		}
	}
	return total
}

func TestMetaMessagesRideSingleCells(t *testing.T) {
	msgs := []Msg{
		&MkdirReq{Parent: 1, Name: "dir"}, &MkdirResp{},
		&CreateReq{Parent: 1, Name: "checkpoint.0001"}, &CreateResp{},
		&LookupReq{Parent: 1, Name: "a"}, &LookupResp{},
		&StatReq{}, &StatResp{},
		&UtimeReq{}, &UtimeResp{},
		&UnlinkReq{Parent: 1, Name: "a"}, &UnlinkResp{},
		&RenameReq{Name: "a", NewName: "b"}, &RenameResp{},
		&OpenGetLayoutReq{Parent: 1, Name: "a"}, &SetLayoutResp{},
	}
	for _, m := range msgs {
		if got := m.WireSize(); got != CellBytes {
			t.Errorf("%T wire size = %d, want one %d-byte cell", m, got, CellBytes)
		}
	}
	// Bulk listings grow beyond the single cell.
	if got := (&ReaddirPlusResp{Entries: make([]inode.Inode, 100)}).WireSize(); got <= CellBytes {
		t.Errorf("100-entry readdirplus wire size = %d, want > one cell", got)
	}
	if got := (&ReaddirPlusResp{}).WireSize(); got != CellBytes {
		t.Errorf("empty readdirplus wire size = %d, want one cell", got)
	}
}

func TestDataMessagesChargePayloadOneWay(t *testing.T) {
	w := &ObjWriteReq{Count: 64, Payload: 64 * 4096}
	if w.WireSize() != 64*4096 {
		t.Errorf("write request carries %d bytes, want payload %d", w.WireSize(), 64*4096)
	}
	if (&ObjWriteResp{}).WireSize() != 0 {
		t.Error("write ack must be free")
	}
	if (&ObjReadReq{Payload: 4096}).WireSize() != 0 {
		t.Error("read descriptor must be free")
	}
	if got := (&ObjReadResp{Payload: 4096}).WireSize(); got != 4096 {
		t.Errorf("read response carries %d bytes, want payload 4096", got)
	}
	for _, m := range []Msg{
		&ObjCreateReq{}, &ObjFlushReq{}, &ObjFsyncReq{}, &ObjTruncateReq{},
		&ObjDeleteReq{}, &ObjCloseReq{}, &ObjExtCountReq{}, &ObjExtentsReq{},
		&MDSSyncReq{}, &ExtentChurnReq{Units: 10},
	} {
		if m.WireSize() != 0 {
			t.Errorf("%T is control plane, wire size must be 0", m)
		}
	}
}

func TestReplayCacheMakesRetriesIdempotent(t *testing.T) {
	srv := newMDS(t)
	ep := NewMDSEndpoint("mds", srv)
	req := &CreateReq{Parent: srv.Root(), Name: "once"}
	first, err := ep.Serve(42, req)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ep.Serve(42, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.(*CreateResp).Ino != again.(*CreateResp).Ino {
		t.Fatal("replayed create returned a different inode")
	}
	if got := srv.Stats().RPCs; got != 1 {
		t.Fatalf("server executed %d RPCs, want 1 (replay must not re-execute)", got)
	}
	if ep.ReplayHits() != 1 {
		t.Fatalf("replay hits = %d, want 1", ep.ReplayHits())
	}
	// A fresh xid executes for real.
	if _, err := ep.Serve(43, &CreateReq{Parent: srv.Root(), Name: "twice"}); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().RPCs; got != 2 {
		t.Fatalf("server executed %d RPCs, want 2", got)
	}
}

func TestNetTransportChargesLinkPerDirection(t *testing.T) {
	srv := newMDS(t)
	link := netsim.NewLink(netsim.GbE())
	conn := NewConn(ClientConfig{})
	conn.Register("mds", NewMDSEndpoint("mds", srv), link)
	cl := NewMDSClient(conn, "mds")
	if _, err := cl.Create(srv.Root(), "f"); err != nil {
		t.Fatal(err)
	}
	st := link.Stats()
	if st.Messages != 2 || st.Bytes != 2*CellBytes {
		t.Fatalf("one metadata RPC charged %d messages / %d bytes, want 2 / %d",
			st.Messages, st.Bytes, 2*CellBytes)
	}
	// Control-plane ops never touch the link.
	if err := cl.Sync(); err != nil {
		t.Fatal(err)
	}
	if st2 := link.Stats(); st2 != st {
		t.Fatalf("mds-sync moved link stats %+v -> %+v, want no wire traffic", st, st2)
	}
}

func TestOSTDataPathChargesPayload(t *testing.T) {
	srv := ost.NewServer(0, ost.DefaultConfig())
	link := netsim.NewLink(netsim.FC400())
	conn := NewConn(ClientConfig{})
	conn.Register("ost0", NewOSTEndpoint("ost0", srv, vanillaFactory), link)
	blockSize := ost.DefaultConfig().Disk.BlockSize
	cl := NewOSTClient(conn, "ost0", blockSize)

	if err := cl.CreateObject(1, 0); err != nil {
		t.Fatal(err)
	}
	if st := link.Stats(); st.Messages != 0 {
		t.Fatalf("object create is control plane, charged %+v", st)
	}
	stream := core.StreamID{Client: 1, PID: 1}
	if err := cl.Write(1, stream, 0, 64); err != nil {
		t.Fatal(err)
	}
	st := link.Stats()
	if st.Messages != 1 || st.Bytes != 64*blockSize {
		t.Fatalf("64-block write charged %d msgs / %d bytes, want 1 / %d",
			st.Messages, st.Bytes, 64*blockSize)
	}
	if err := cl.Read(1, 0, 64); err != nil {
		t.Fatal(err)
	}
	st = link.Stats()
	if st.Messages != 2 || st.Bytes != 2*64*blockSize {
		t.Fatalf("read added %d msgs / %d bytes total, want 2 / %d",
			st.Messages, st.Bytes, 2*64*blockSize)
	}
	n, err := cl.ExtentCount(1)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("extent count = %d, want >= 1", n)
	}
}

// TestTimedOutRPCRetriedToCompletion is the acceptance scenario: under
// injected message loss, a metadata RPC times out, is retried, and
// completes — with the timeout and retry visible in layer=rpc telemetry
// and the wait visible on the simulated clock.
func TestTimedOutRPCRetriedToCompletion(t *testing.T) {
	srv := newMDS(t)
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer(nil)
	fault := UniformFaults(7, 0.5)
	conn := NewConn(ClientConfig{Fault: &fault})
	conn.Register("mds", NewMDSEndpoint("mds", srv), netsim.NewLink(netsim.GbE()))
	conn.SetTracer(tr)
	conn.Instrument(reg, telemetry.Labels{"layer": "rpc"})
	cl := NewMDSClient(conn, "mds")

	for i := 0; i < 32; i++ {
		name := "f" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if _, err := cl.Create(srv.Root(), name); err != nil {
			t.Fatalf("create %d failed under retry: %v", i, err)
		}
	}
	timeouts := counterValue(reg, "rpc_timeouts", "")
	retries := counterValue(reg, "rpc_retries", "")
	recoveries := counterValue(reg, "rpc_recoveries", "")
	if timeouts == 0 || retries == 0 || recoveries == 0 {
		t.Fatalf("want visible timeouts/retries/recoveries, got %d/%d/%d",
			timeouts, retries, recoveries)
	}
	// rpc_calls counts wire attempts, so response-loss retries push it
	// past the 32 logical creates.
	if got := counterValue(reg, "rpc_calls", "op=create"); got < 32 {
		t.Fatalf("rpc_calls{op=create} = %d, want >= 32", got)
	}
	if tr.Now() < DefaultRetryPolicy().TimeoutNs {
		t.Fatalf("simulated clock advanced %d ns, want at least one timeout (%d ns)",
			tr.Now(), DefaultRetryPolicy().TimeoutNs)
	}
	var rpcSpans int
	for _, sp := range tr.Spans() {
		if sp.Layer == "rpc" {
			rpcSpans++
		}
	}
	if rpcSpans == 0 {
		t.Fatal("no rpc-layer spans recorded")
	}
	// Response-loss retries were answered from the replay cache, so the
	// server executed each logical create at most once.
	if got := srv.Stats().RPCs; got != 32 {
		t.Fatalf("server executed %d RPCs for 32 logical creates, want 32", got)
	}
}

func TestRetryExhaustionSurfacesTimeout(t *testing.T) {
	srv := newMDS(t)
	fault := FaultConfig{Seed: 1, Meta: FaultRates{Drop: 1}}
	policy := RetryPolicy{MaxRetries: 2}
	conn := NewConn(ClientConfig{Fault: &fault, Retry: &policy})
	conn.Register("mds", NewMDSEndpoint("mds", srv), nil)
	cl := NewMDSClient(conn, "mds")
	_, err := cl.Create(srv.Root(), "doomed")
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Kind != KindTimeout {
		t.Fatalf("err = %v, want ExhaustedError with KindTimeout", err)
	}
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want errors.Is(err, ErrRetriesExhausted)", err)
	}
	if ex.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3 (first try + 2 retries)", ex.Attempts)
	}
	if got := srv.Stats().RPCs; got != 0 {
		t.Fatalf("server executed %d RPCs, want 0 (every request dropped)", got)
	}
}

// TestNoRetryPolicyFailsOnFirstDrop is the regression test for the
// zero-vs-unset retry bug: MaxRetries: 0 used to silently promote to the
// default budget of 8, so a caller could not express "no retries". The
// NoRetries sentinel (and NoRetryPolicy) must fail on the very first
// dropped message with KindTimeout — exactly one wire attempt, no re-sends.
func TestNoRetryPolicyFailsOnFirstDrop(t *testing.T) {
	srv := newMDS(t)
	reg := telemetry.NewRegistry()
	fault := FaultConfig{Seed: 1, Meta: FaultRates{Drop: 1}}
	policy := NoRetryPolicy()
	conn := NewConn(ClientConfig{Fault: &fault, Retry: &policy})
	conn.Register("mds", NewMDSEndpoint("mds", srv), nil)
	conn.Instrument(reg, telemetry.Labels{"layer": "rpc"})
	cl := NewMDSClient(conn, "mds")
	_, err := cl.Create(srv.Root(), "dropped")
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Kind != KindTimeout {
		t.Fatalf("err = %v, want ExhaustedError with KindTimeout on the first drop", err)
	}
	if ex.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1 (no re-sends)", ex.Attempts)
	}
	if got := counterValue(reg, "rpc_retries", ""); got != 0 {
		t.Fatalf("no-retry policy re-sent %d times, want 0", got)
	}
	if got := counterValue(reg, "rpc_calls", "op=create"); got != 0 {
		t.Fatalf("rpc_calls{op=create} = %d, want 0 (the one attempt dropped before the wire)", got)
	}
	if got := counterValue(reg, "rpc_timeouts", ""); got != 1 {
		t.Fatalf("rpc_timeouts = %d, want 1 (the drop was charged)", got)
	}
	// The explicit sentinel works without the constructor too.
	policy2 := RetryPolicy{MaxRetries: NoRetries}
	conn2 := NewConn(ClientConfig{Fault: &fault, Retry: &policy2})
	conn2.Register("mds", NewMDSEndpoint("mds", srv), nil)
	if _, err := NewMDSClient(conn2, "mds").Create(srv.Root(), "dropped2"); err == nil {
		t.Fatal("sentinel MaxRetries policy must fail on the first drop")
	}
}

func TestApplicationErrorsPassThroughWithoutRetry(t *testing.T) {
	srv := newMDS(t)
	reg := telemetry.NewRegistry()
	conn := NewConn(ClientConfig{})
	conn.Register("mds", NewMDSEndpoint("mds", srv), nil)
	conn.Instrument(reg, telemetry.Labels{"layer": "rpc"})
	cl := NewMDSClient(conn, "mds")
	if _, err := cl.Lookup(srv.Root(), "missing"); err == nil {
		t.Fatal("lookup of a missing name must fail")
	} else if _, isRPC := err.(*Error); isRPC {
		t.Fatalf("application error surfaced as rpc error: %v", err)
	}
	if got := counterValue(reg, "rpc_retries", ""); got != 0 {
		t.Fatalf("application error was retried %d times, want 0", got)
	}
	if got := counterValue(reg, "rpc_errors", "op=lookup"); got != 1 {
		t.Fatalf("rpc_errors{op=lookup} = %d, want 1", got)
	}
}

func TestFaultInjectionIsDeterministic(t *testing.T) {
	run := func() (int64, netsim.Stats, int64) {
		srv := newMDS(t)
		reg := telemetry.NewRegistry()
		link := netsim.NewLink(netsim.GbE())
		fault := UniformFaults(99, 0.3)
		conn := NewConn(ClientConfig{Fault: &fault})
		conn.Register("mds", NewMDSEndpoint("mds", srv), link)
		conn.Instrument(reg, telemetry.Labels{"layer": "rpc"})
		cl := NewMDSClient(conn, "mds")
		for i := 0; i < 64; i++ {
			if _, err := cl.Create(srv.Root(), "f"+string(rune('0'+i%10))+string(rune('a'+i/10))); err != nil {
				t.Fatal(err)
			}
		}
		var faults int64
		for _, s := range reg.Snapshot() {
			if s.Name == "rpc_faults" {
				faults += s.Value
			}
		}
		return faults, link.Stats(), srv.Stats().RPCs
	}
	f1, l1, r1 := run()
	f2, l2, r2 := run()
	if f1 == 0 {
		t.Fatal("fault injector never fired at 30% rates over 64 ops")
	}
	if f1 != f2 || l1 != l2 || r1 != r2 {
		t.Fatalf("two identical faulty runs diverged: faults %d/%d, link %+v/%+v, rpcs %d/%d",
			f1, f2, l1, l2, r1, r2)
	}
}
