package rpc

import "sync"

// Request pooling. Request messages are never retained by the stack: the
// transports read them, the endpoints dispatch on them, and the replay
// caches record only responses — so a client helper can return its request
// to a pool the moment Call returns. Responses are NOT poolable: every
// executed (xid → response) pair lives in the endpoint's replay cache, and
// reusing a cached response struct would corrupt replayed retries. (The
// empty ack responses are zero-sized and cost nothing to "allocate".)
//
// The pools matter because data-path clients build one request per striped
// piece: a single benchmark run issues millions of ObjWriteReq/ObjReadReq/
// ObjExtCountReq values that all died within one call.
type reqPool[T any] struct{ p sync.Pool }

// get returns a zeroed-or-recycled request.
func (rp *reqPool[T]) get() *T {
	if v := rp.p.Get(); v != nil {
		return v.(*T)
	}
	return new(T)
}

// put recycles a request the stack has finished with.
func (rp *reqPool[T]) put(x *T) {
	rp.p.Put(x)
}

// Pools for the per-block and per-piece hot requests. Cold control requests
// (mkdir, open, layout) are not worth pooling.
// extCountRespCache interns the extent-count responses for small counts —
// the single hottest non-empty response type (the PFS client polls every
// component's extent count around each write for churn accounting). The
// cached values are shared and immutable: the replay caches may retain
// them indefinitely, which is exactly why they can never be pooled.
var extCountRespCache = func() [4096]*ObjExtCountResp {
	var t [4096]*ObjExtCountResp
	for i := range t {
		t[i] = &ObjExtCountResp{Count: i}
	}
	return t
}()

// extCountResp returns the (possibly interned) response for count n.
func extCountResp(n int) *ObjExtCountResp {
	if n >= 0 && n < len(extCountRespCache) {
		return extCountRespCache[n]
	}
	return &ObjExtCountResp{Count: n}
}

var (
	objCreateReqPool   reqPool[ObjCreateReq]
	objWriteReqPool    reqPool[ObjWriteReq]
	objReadReqPool     reqPool[ObjReadReq]
	objExtCountReqPool reqPool[ObjExtCountReq]
	objFsyncReqPool    reqPool[ObjFsyncReq]
	objCloseReqPool    reqPool[ObjCloseReq]
	extentChurnReqPool reqPool[ExtentChurnReq]
)
