package rpc

import (
	"errors"
	"fmt"
)

// ErrRetriesExhausted is the sentinel every retry-budget failure matches:
// errors.Is(err, ErrRetriesExhausted) is true exactly when a call gave up
// after its last re-send. Callers that previously fished for a generic
// *Error cannot distinguish "the server answered with a failure" from "we
// stopped asking"; this sentinel names the latter.
var ErrRetriesExhausted = errors.New("rpc: retries exhausted")

// ExhaustedError is the typed failure of a retry budget running out. It
// carries the exchange identity, the failure kind of the final attempt
// (KindTimeout for a loss, KindUnavailable for a persistent transient
// failure), how many attempts were made in total, and — when the final
// attempt failed with an inspectable error rather than a silent loss — the
// last cause, reachable through errors.Unwrap/errors.As.
type ExhaustedError struct {
	Op       Op
	Addr     string
	Kind     ErrKind
	Attempts int
	// Cause is the final attempt's error: the transient *Error that kept
	// coming back, or nil when the exchange was simply lost (the client
	// learned nothing beyond its own timeout).
	Cause error
}

// Error renders the failure.
func (e *ExhaustedError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("rpc: %s to %s: retries exhausted after %d attempts (%s): %v",
			e.Op, e.Addr, e.Attempts, e.Kind, e.Cause)
	}
	return fmt.Sprintf("rpc: %s to %s: retries exhausted after %d attempts (%s)",
		e.Op, e.Addr, e.Attempts, e.Kind)
}

// Unwrap exposes the last cause to errors.As/errors.Is chains.
func (e *ExhaustedError) Unwrap() error { return e.Cause }

// Is matches the ErrRetriesExhausted sentinel.
func (e *ExhaustedError) Is(target error) bool { return target == ErrRetriesExhausted }

// Suspect reports whether the failure is evidence the endpoint is
// unreachable — it always is: the budget only runs out on losses and
// transient transport failures, never on application errors.
func (e *ExhaustedError) Suspect() bool { return true }
