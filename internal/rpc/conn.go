package rpc

import (
	"sync/atomic"

	"redbud/internal/netsim"
	"redbud/internal/telemetry"
)

// ClientConfig selects the transport stack a client mounts with.
type ClientConfig struct {
	// Retry overrides the timeout/retry policy (DefaultRetryPolicy when
	// nil).
	Retry *RetryPolicy
	// Fault, when set, splices the deterministic fault injector into the
	// stack beneath the retry layer.
	Fault *FaultConfig
}

// Conn is one client's connection bundle: the assembled transport stack
// (retry → optional fault injector → network) plus the XID allocator that
// gives every logical call a transaction identity reused across its
// retries — the key the endpoints' replay caches deduplicate on.
type Conn struct {
	net     *NetTransport
	fault   *FaultTransport // nil on fault-free stacks
	top     Transport
	nextXID atomic.Uint64
}

// NewConn assembles a connection per the config.
func NewConn(cfg ClientConfig) *Conn {
	nt := NewNetTransport()
	var top Transport = nt
	var ft *FaultTransport
	if cfg.Fault != nil {
		ft = NewFaultTransport(top, *cfg.Fault)
		top = ft
	}
	var policy RetryPolicy
	if cfg.Retry != nil {
		policy = *cfg.Retry
	}
	top = NewRetryTransport(top, policy)
	return &Conn{net: nt, fault: ft, top: top}
}

// Fault exposes the stack's fault injector (nil when the connection was
// built without one) — the handle crash/revive tooling drives.
func (c *Conn) Fault() *FaultTransport { return c.fault }

// Register routes addr to an endpoint over the given link.
func (c *Conn) Register(addr string, ep Endpoint, link *netsim.Link) {
	c.net.Register(addr, ep, link)
}

// SetTracer attaches (or with nil detaches) the span tracer the whole
// stack charges simulated time against.
func (c *Conn) SetTracer(t *telemetry.Tracer) { c.net.sh.tracer = t }

// SetTraceParent declares the client-operation span under which the
// stack's rpc spans nest; zero clears it. Serialized by the mount like
// every call.
func (c *Conn) SetTraceParent(id telemetry.SpanID) { c.net.traceParent = id }

// Instrument publishes the layer=rpc metrics: per-op call counters and
// latency histograms, retry/timeout/recovery counters, fault counters,
// and per-endpoint replay-cache hits.
func (c *Conn) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	c.net.sh.m = newMetrics(reg, labels)
	for addr, rt := range c.net.routes {
		ep := rt.ep
		reg.CounterFunc("rpc_replay_hits", labels.With("addr", addr),
			func() int64 { return ep.ReplayHits() })
	}
}

// Call sends one logical request: it allocates the XID and runs the full
// stack (retries reuse the XID).
func (c *Conn) Call(addr string, req Request) (Msg, error) {
	return c.top.Call(addr, c.nextXID.Add(1), req)
}

// call is the typed client helper: it narrows the response or fails with
// KindBadRequest on a protocol mismatch.
func call[T Msg](c *Conn, addr string, req Request) (T, error) {
	var zero T
	resp, err := c.Call(addr, req)
	if err != nil {
		return zero, err
	}
	out, ok := resp.(T)
	if !ok {
		return zero, &Error{Op: req.RPCOp(), Addr: addr, Kind: KindBadRequest}
	}
	return out, nil
}
