package rpc

import (
	"errors"
	"strings"
	"testing"
)

// TestExhaustedErrorWrapsLastTransientCause pins the retry-budget error
// contract: a call that gives up on persistent transient failures returns
// a typed *ExhaustedError that (a) matches the ErrRetriesExhausted
// sentinel, (b) unwraps to the final attempt's retriable *Error, and (c)
// counts every wire attempt. Callers stop pattern-matching a generic
// *Error and can tell "we stopped asking" from "the server said no".
func TestExhaustedErrorWrapsLastTransientCause(t *testing.T) {
	srv := newMDS(t)
	fault := FaultConfig{Seed: 3, Meta: FaultRates{Error: 1}}
	policy := RetryPolicy{MaxRetries: 2}
	conn := NewConn(ClientConfig{Fault: &fault, Retry: &policy})
	conn.Register("mds", NewMDSEndpoint("mds", srv), nil)
	cl := NewMDSClient(conn, "mds")

	_, err := cl.Create(srv.Root(), "doomed")
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want errors.Is(err, ErrRetriesExhausted)", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %T %v, want *ExhaustedError", err, err)
	}
	if ex.Kind != KindUnavailable {
		t.Fatalf("Kind = %s, want %s (persistent transient failure)", ex.Kind, KindUnavailable)
	}
	if ex.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3 (first try + 2 retries)", ex.Attempts)
	}
	var cause *Error
	if !errors.As(err, &cause) || !cause.Transient() {
		t.Fatalf("cause = %v, want the last transient *Error through errors.As", ex.Cause)
	}
	if !strings.Contains(ex.Error(), "retries exhausted") {
		t.Fatalf("message %q must name the exhaustion", ex.Error())
	}
	if got := srv.Stats().RPCs; got != 0 {
		t.Fatalf("server executed %d RPCs, want 0 (every attempt failed before execution)", got)
	}
}

// TestExhaustedErrorLossHasNoCause: on pure message loss the client learns
// nothing beyond its own timeout — there is no inspectable cause, only the
// typed exhaustion with KindTimeout.
func TestExhaustedErrorLossHasNoCause(t *testing.T) {
	srv := newMDS(t)
	fault := FaultConfig{Seed: 3, Meta: FaultRates{Drop: 1}}
	policy := RetryPolicy{MaxRetries: 1}
	conn := NewConn(ClientConfig{Fault: &fault, Retry: &policy})
	conn.Register("mds", NewMDSEndpoint("mds", srv), nil)
	cl := NewMDSClient(conn, "mds")

	_, err := cl.Create(srv.Root(), "lost")
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Kind != KindTimeout {
		t.Fatalf("err = %v, want ExhaustedError with KindTimeout", err)
	}
	if ex.Cause != nil {
		t.Fatalf("Cause = %v, want nil on silent loss", ex.Cause)
	}
	if errors.Unwrap(err) != nil {
		t.Fatalf("Unwrap = %v, want nil", errors.Unwrap(err))
	}
}
