package rpc

import "redbud/internal/telemetry"

// Endpoint is one server's dispatcher: the only path from the RPC layer
// into the server it wraps. Endpoints are serialized by the caller (the
// PFS mount or MDS cluster lock), like the servers they front.
type Endpoint interface {
	// Addr is the endpoint's address on the transport.
	Addr() string
	// Serve executes one request. xid is the client-assigned transaction
	// ID: a retried xid whose original execution completed is answered
	// from the replay cache without re-executing.
	Serve(xid uint64, req Request) (Msg, error)
	// SetTraceParent declares the span under which the server's own spans
	// nest while serving; zero clears it.
	SetTraceParent(id telemetry.SpanID)
	// ReplayHits reports how many requests were answered from the replay
	// cache.
	ReplayHits() int64
}

// replayCacheSize bounds the duplicate-request cache. Retries arrive
// within a handful of calls of the original, so a small FIFO window is
// plenty; production DRCs are similarly bounded.
const replayCacheSize = 1024

// replayEntry is one executed request's recorded outcome.
type replayEntry struct {
	xid  uint64
	resp Msg
	err  error
}

// replayCache is the NFS-style duplicate request cache: it records every
// executed (xid → outcome) pair so a retry of a request whose response was
// lost returns the original outcome instead of re-executing a
// non-idempotent operation.
//
// The connection assigns xids from one monotone counter, so the xids an
// endpoint records are strictly increasing: a never-seen request always
// carries xid > lastXid, and the hot path is a single compare plus a ring
// write — no map. Only a retransmission (xid ≤ lastXid, rare by
// construction) scans the ring, newest entry first; retries reuse a
// just-recorded xid, so the scan terminates within a few probes. Scanning
// the whole ring on a miss keeps the retention semantics exactly those of
// the map-backed FIFO this replaces.
type replayCache struct {
	ring    []replayEntry // FIFO; oldest entry at head
	head    int
	n       int
	lastXid uint64 // newest xid recorded; 0 = none (xids start at 1)
	hits    int64
}

// newReplayCache builds an empty cache.
func newReplayCache() *replayCache {
	return &replayCache{ring: make([]replayEntry, replayCacheSize)}
}

// lookup returns the recorded outcome of xid, if any.
func (c *replayCache) lookup(xid uint64) (replayEntry, bool) {
	if xid > c.lastXid {
		return replayEntry{}, false
	}
	for i := 1; i <= c.n; i++ {
		e := &c.ring[(c.head+c.n-i)%replayCacheSize]
		if e.xid == xid {
			c.hits++
			return *e, true
		}
	}
	return replayEntry{}, false
}

// record stores an executed request's outcome, evicting the oldest entry
// at capacity.
func (c *replayCache) record(xid uint64, resp Msg, err error) {
	e := replayEntry{xid: xid, resp: resp, err: err}
	if c.n == replayCacheSize {
		// Full: the tail slot coincides with the head slot, so evicting the
		// oldest and enqueuing the newest is one overwrite plus a rotate.
		c.ring[c.head] = e
		c.head = (c.head + 1) % replayCacheSize
	} else {
		c.ring[(c.head+c.n)%replayCacheSize] = e
		c.n++
	}
	// Monotone: a retried request whose original send was dropped records
	// an xid older than entries already here; the fast-path guard in lookup
	// must keep covering those newer entries.
	if xid > c.lastXid {
		c.lastXid = xid
	}
}

// serveCached wraps a dispatch function with the replay cache.
func (c *replayCache) serveCached(xid uint64, dispatch func() (Msg, error)) (Msg, error) {
	if e, ok := c.lookup(xid); ok {
		return e.resp, e.err
	}
	resp, err := dispatch()
	c.record(xid, resp, err)
	return resp, err
}
