package rpc

import "redbud/internal/telemetry"

// Endpoint is one server's dispatcher: the only path from the RPC layer
// into the server it wraps. Endpoints are serialized by the caller (the
// PFS mount or MDS cluster lock), like the servers they front.
type Endpoint interface {
	// Addr is the endpoint's address on the transport.
	Addr() string
	// Serve executes one request. xid is the client-assigned transaction
	// ID: a retried xid whose original execution completed is answered
	// from the replay cache without re-executing.
	Serve(xid uint64, req Request) (Msg, error)
	// SetTraceParent declares the span under which the server's own spans
	// nest while serving; zero clears it.
	SetTraceParent(id telemetry.SpanID)
	// ReplayHits reports how many requests were answered from the replay
	// cache.
	ReplayHits() int64
}

// replayCacheSize bounds the duplicate-request cache. Retries arrive
// within a handful of calls of the original, so a small FIFO window is
// plenty; production DRCs are similarly bounded.
const replayCacheSize = 1024

// replayEntry is one executed request's recorded outcome.
type replayEntry struct {
	resp Msg
	err  error
}

// replayCache is the NFS-style duplicate request cache: it records every
// executed (xid → outcome) pair so a retry of a request whose response was
// lost returns the original outcome instead of re-executing a
// non-idempotent operation.
type replayCache struct {
	entries map[uint64]replayEntry
	order   []uint64 // FIFO eviction
	hits    int64
}

// newReplayCache builds an empty cache.
func newReplayCache() *replayCache {
	return &replayCache{entries: make(map[uint64]replayEntry, replayCacheSize)}
}

// lookup returns the recorded outcome of xid, if any.
func (c *replayCache) lookup(xid uint64) (replayEntry, bool) {
	e, ok := c.entries[xid]
	if ok {
		c.hits++
	}
	return e, ok
}

// record stores an executed request's outcome, evicting the oldest entry
// at capacity.
func (c *replayCache) record(xid uint64, resp Msg, err error) {
	if len(c.order) >= replayCacheSize {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
	c.entries[xid] = replayEntry{resp: resp, err: err}
	c.order = append(c.order, xid)
}

// serveCached wraps a dispatch function with the replay cache.
func (c *replayCache) serveCached(xid uint64, dispatch func() (Msg, error)) (Msg, error) {
	if e, ok := c.lookup(xid); ok {
		return e.resp, e.err
	}
	resp, err := dispatch()
	c.record(xid, resp, err)
	return resp, err
}
