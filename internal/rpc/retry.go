package rpc

import "redbud/internal/sim"

// RetryPolicy is the client-side timeout/retry schedule. A lost message
// costs the caller the RPC timeout on the simulated clock; each re-send
// waits an exponentially growing backoff. Transient failures (injected
// errors) retry after the backoff without the timeout charge — the
// failure came back immediately. Server application errors are never
// retried.
type RetryPolicy struct {
	// TimeoutNs is how long the client waits for a response before
	// declaring the exchange lost.
	TimeoutNs sim.Ns
	// MaxRetries bounds the re-sends after the first attempt. Zero means
	// "unset" and takes the default (8); NoRetries (-1) disables re-sends
	// entirely, so the first drop or transient failure surfaces
	// immediately. Use NoRetryPolicy for a ready-made fail-fast policy.
	MaxRetries int
	// BackoffNs is the first retry's wait.
	BackoffNs sim.Ns
	// BackoffFactor multiplies the wait after each retry.
	BackoffFactor float64
	// MaxBackoffNs caps the wait.
	MaxBackoffNs sim.Ns
}

// NoRetries is the MaxRetries sentinel for "fail on the first loss". A
// plain 0 cannot express it: the zero value of RetryPolicy must keep
// meaning "all defaults", so 0 promotes to the default retry budget.
const NoRetries = -1

// NoRetryPolicy returns a fail-fast policy: default timeout, no re-sends.
// The first dropped message surfaces as KindTimeout, the first transient
// failure as KindUnavailable.
func NoRetryPolicy() RetryPolicy {
	p := DefaultRetryPolicy()
	p.MaxRetries = NoRetries
	return p
}

// DefaultRetryPolicy is tuned for the simulated cluster: the timeout
// comfortably clears the slowest fault-free metadata exchange, and eight
// doubling retries ride out percent-level loss rates.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		TimeoutNs:     50 * sim.Millisecond,
		MaxRetries:    8,
		BackoffNs:     1 * sim.Millisecond,
		BackoffFactor: 2,
		MaxBackoffNs:  200 * sim.Millisecond,
	}
}

// RetryTransport re-sends lost or transiently failed exchanges with
// exponential backoff over simulated time.
type RetryTransport struct {
	next   Transport
	policy RetryPolicy
	sh     *shared
}

// NewRetryTransport wraps next with the policy (zero-valued fields take
// the defaults; MaxRetries < 0 — see NoRetries — means no re-sends).
func NewRetryTransport(next Transport, policy RetryPolicy) *RetryTransport {
	def := DefaultRetryPolicy()
	if policy.TimeoutNs <= 0 {
		policy.TimeoutNs = def.TimeoutNs
	}
	if policy.MaxRetries == 0 {
		policy.MaxRetries = def.MaxRetries
	} else if policy.MaxRetries < 0 {
		policy.MaxRetries = 0
	}
	if policy.BackoffNs <= 0 {
		policy.BackoffNs = def.BackoffNs
	}
	if policy.BackoffFactor < 1 {
		policy.BackoffFactor = def.BackoffFactor
	}
	if policy.MaxBackoffNs <= 0 {
		policy.MaxBackoffNs = def.MaxBackoffNs
	}
	return &RetryTransport{next: next, policy: policy, sh: joinStack(next)}
}

// sharedState exposes the stack state to decorators.
func (t *RetryTransport) sharedState() *shared { return t.sh }

// Call runs the retry loop. Drops charge the full timeout before the
// re-send; transient errors re-send after the backoff alone. When the
// retry budget runs out the call fails with KindTimeout (loss) or
// KindUnavailable (persistent transient failure).
func (t *RetryTransport) Call(addr string, xid uint64, req Request) (Msg, error) {
	p := t.policy
	backoff := p.BackoffNs
	for attempt := 0; ; attempt++ {
		resp, err := t.next.Call(addr, xid, req)
		if err == nil {
			if attempt > 0 {
				t.sh.m.recovery(t.sh.tracer.Now(), req.RPCOp())
			}
			return resp, nil
		}
		kind := KindUnavailable
		var cause error
		if _, lost := err.(*dropError); lost {
			// The message vanished: the client finds out by waiting out
			// the RPC timeout. There is no inspectable cause — the client
			// learned nothing beyond its own clock.
			t.sh.advance(p.TimeoutNs)
			t.sh.m.timeout(t.sh.tracer.Now(), req.RPCOp())
			kind = KindTimeout
		} else if re, ok := err.(*Error); !ok || !re.Transient() {
			// Application errors and non-retriable RPC failures pass
			// through.
			return resp, err
		} else {
			cause = re
		}
		if attempt >= p.MaxRetries {
			t.sh.m.exhaust(t.sh.tracer.Now(), req.RPCOp())
			return nil, &ExhaustedError{
				Op:       req.RPCOp(),
				Addr:     addr,
				Kind:     kind,
				Attempts: attempt + 1,
				Cause:    cause,
			}
		}
		t.sh.m.retry(t.sh.tracer.Now(), req.RPCOp())
		t.sh.advance(backoff)
		backoff = sim.Ns(float64(backoff) * p.BackoffFactor)
		if backoff > p.MaxBackoffNs {
			backoff = p.MaxBackoffNs
		}
	}
}
