package rpc

import (
	"redbud/internal/extent"
	"redbud/internal/inode"
	"redbud/internal/mds"
	"redbud/internal/replica"
	"redbud/internal/telemetry"
)

// MDSEndpoint dispatches the metadata op catalog into one mds.Server.
type MDSEndpoint struct {
	addr  string
	srv   *mds.Server
	cache *replayCache
}

// NewMDSEndpoint wraps a metadata server.
func NewMDSEndpoint(addr string, srv *mds.Server) *MDSEndpoint {
	return &MDSEndpoint{addr: addr, srv: srv, cache: newReplayCache()}
}

// Addr is the endpoint's address on the transport.
func (e *MDSEndpoint) Addr() string { return e.addr }

// Server exposes the wrapped server for measurement.
func (e *MDSEndpoint) Server() *mds.Server { return e.srv }

// SetTraceParent declares the span the server's spans nest under.
func (e *MDSEndpoint) SetTraceParent(id telemetry.SpanID) { e.srv.SetTraceParent(id) }

// ReplayHits reports requests answered from the replay cache.
func (e *MDSEndpoint) ReplayHits() int64 { return e.cache.hits }

// Serve executes one request through the replay cache.
func (e *MDSEndpoint) Serve(xid uint64, req Request) (Msg, error) {
	return e.cache.serveCached(xid, func() (Msg, error) { return e.dispatch(req) })
}

// dispatch routes a request to the server method implementing its op.
func (e *MDSEndpoint) dispatch(req Request) (Msg, error) {
	switch m := req.(type) {
	case *MkdirReq:
		ino, err := e.srv.Mkdir(m.Parent, m.Name)
		if err != nil {
			return nil, err
		}
		return &MkdirResp{Ino: ino}, nil
	case *CreateReq:
		ino, err := e.srv.Create(m.Parent, m.Name)
		if err != nil {
			return nil, err
		}
		return &CreateResp{Ino: ino}, nil
	case *LookupReq:
		ino, err := e.srv.Lookup(m.Parent, m.Name)
		if err != nil {
			return nil, err
		}
		return &LookupResp{Ino: ino, Resolved: e.srv.FS().Resolve(ino)}, nil
	case *StatReq:
		rec, err := e.srv.Stat(m.Ino)
		if err != nil {
			return nil, err
		}
		return &StatResp{Inode: rec}, nil
	case *StatNameReq:
		rec, err := e.srv.StatName(m.Parent, m.Name)
		if err != nil {
			return nil, err
		}
		return &StatNameResp{Inode: rec}, nil
	case *UtimeReq:
		if err := e.srv.Utime(m.Ino); err != nil {
			return nil, err
		}
		return &UtimeResp{}, nil
	case *UnlinkReq:
		if err := e.srv.Unlink(m.Parent, m.Name); err != nil {
			return nil, err
		}
		return &UnlinkResp{}, nil
	case *RmdirReq:
		if err := e.srv.Rmdir(m.Parent, m.Name); err != nil {
			return nil, err
		}
		return &RmdirResp{}, nil
	case *RenameReq:
		ino, err := e.srv.Rename(m.SrcParent, m.Name, m.DstParent, m.NewName)
		if err != nil {
			return nil, err
		}
		return &RenameResp{Ino: ino}, nil
	case *ReaddirReq:
		names, err := e.srv.Readdir(m.Parent)
		if err != nil {
			return nil, err
		}
		return &ReaddirResp{Names: names}, nil
	case *ReaddirPlusReq:
		recs, err := e.srv.ReaddirPlus(m.Parent)
		if err != nil {
			return nil, err
		}
		return &ReaddirPlusResp{Entries: recs}, nil
	case *OpenGetLayoutReq:
		ino, layout, err := e.srv.OpenGetLayout(m.Parent, m.Name)
		if err != nil {
			return nil, err
		}
		return &OpenGetLayoutResp{Ino: ino, Layout: layout}, nil
	case *SetLayoutReq:
		if err := e.srv.SetLayout(m.Ino, m.Layout); err != nil {
			return nil, err
		}
		return &SetLayoutResp{}, nil
	case *MDSSyncReq:
		if err := e.srv.Sync(); err != nil {
			return nil, err
		}
		return &MDSSyncResp{}, nil
	case *ExtentChurnReq:
		e.srv.NoteExtentChurn(m.Units)
		return &ExtentChurnResp{}, nil
	case *PlaceReplicasReq:
		sets, err := e.srv.PlaceReplicas(m.Ino, m.Comps, m.RF, m.Inputs)
		if err != nil {
			return nil, err
		}
		return &PlaceReplicasResp{Sets: sets}, nil
	case *GetReplicaLayoutReq:
		sets, err := e.srv.GetReplicaLayout(m.Ino)
		if err != nil {
			return nil, err
		}
		return &GetReplicaLayoutResp{Sets: sets}, nil
	case *SetReplicaLayoutReq:
		if err := e.srv.SetReplicaLayout(m.Ino, m.Comp, m.Replicas); err != nil {
			return nil, err
		}
		return &SetReplicaLayoutResp{}, nil
	default:
		return nil, &Error{Op: req.RPCOp(), Addr: e.addr, Kind: KindBadRequest}
	}
}

// MDSClient is the typed client of one metadata endpoint; its methods
// mirror the mds.Server surface the mount consumes.
type MDSClient struct {
	conn *Conn
	addr string
}

// NewMDSClient binds a client to an address on the connection.
func NewMDSClient(conn *Conn, addr string) *MDSClient {
	return &MDSClient{conn: conn, addr: addr}
}

// Addr returns the endpoint address the client calls.
func (c *MDSClient) Addr() string { return c.addr }

// Mkdir creates a directory.
func (c *MDSClient) Mkdir(parent inode.Ino, name string) (inode.Ino, error) {
	resp, err := call[*MkdirResp](c.conn, c.addr, &MkdirReq{Parent: parent, Name: name})
	if err != nil {
		return 0, err
	}
	return resp.Ino, nil
}

// Create creates a file.
func (c *MDSClient) Create(parent inode.Ino, name string) (inode.Ino, error) {
	resp, err := call[*CreateResp](c.conn, c.addr, &CreateReq{Parent: parent, Name: name})
	if err != nil {
		return 0, err
	}
	return resp.Ino, nil
}

// Lookup resolves a name.
func (c *MDSClient) Lookup(parent inode.Ino, name string) (inode.Ino, error) {
	resp, err := call[*LookupResp](c.conn, c.addr, &LookupReq{Parent: parent, Name: name})
	if err != nil {
		return 0, err
	}
	return resp.Ino, nil
}

// LookupResolved resolves a name and follows MDS-internal relocations to
// the inode's current identity.
func (c *MDSClient) LookupResolved(parent inode.Ino, name string) (inode.Ino, error) {
	resp, err := call[*LookupResp](c.conn, c.addr, &LookupReq{Parent: parent, Name: name})
	if err != nil {
		return 0, err
	}
	return resp.Resolved, nil
}

// Stat reads an inode.
func (c *MDSClient) Stat(ino inode.Ino) (inode.Inode, error) {
	resp, err := call[*StatResp](c.conn, c.addr, &StatReq{Ino: ino})
	if err != nil {
		return inode.Inode{}, err
	}
	return resp.Inode, nil
}

// StatName resolves and reads an inode.
func (c *MDSClient) StatName(parent inode.Ino, name string) (inode.Inode, error) {
	resp, err := call[*StatNameResp](c.conn, c.addr, &StatNameReq{Parent: parent, Name: name})
	if err != nil {
		return inode.Inode{}, err
	}
	return resp.Inode, nil
}

// Utime updates an mtime.
func (c *MDSClient) Utime(ino inode.Ino) error {
	_, err := call[*UtimeResp](c.conn, c.addr, &UtimeReq{Ino: ino})
	return err
}

// Unlink removes a file.
func (c *MDSClient) Unlink(parent inode.Ino, name string) error {
	_, err := call[*UnlinkResp](c.conn, c.addr, &UnlinkReq{Parent: parent, Name: name})
	return err
}

// Rmdir removes an empty directory.
func (c *MDSClient) Rmdir(parent inode.Ino, name string) error {
	_, err := call[*RmdirResp](c.conn, c.addr, &RmdirReq{Parent: parent, Name: name})
	return err
}

// Rename moves an entry.
func (c *MDSClient) Rename(srcParent inode.Ino, name string, dstParent inode.Ino, newName string) (inode.Ino, error) {
	resp, err := call[*RenameResp](c.conn, c.addr, &RenameReq{
		SrcParent: srcParent, Name: name, DstParent: dstParent, NewName: newName,
	})
	if err != nil {
		return 0, err
	}
	return resp.Ino, nil
}

// Readdir lists a directory.
func (c *MDSClient) Readdir(parent inode.Ino) ([]string, error) {
	resp, err := call[*ReaddirResp](c.conn, c.addr, &ReaddirReq{Parent: parent})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// ReaddirPlus fetches a whole directory with inode contents.
func (c *MDSClient) ReaddirPlus(parent inode.Ino) ([]inode.Inode, error) {
	resp, err := call[*ReaddirPlusResp](c.conn, c.addr, &ReaddirPlusReq{Parent: parent})
	if err != nil {
		return nil, err
	}
	return resp.Entries, nil
}

// OpenGetLayout opens a file and acquires its layout summary.
func (c *MDSClient) OpenGetLayout(parent inode.Ino, name string) (inode.Ino, []extent.Extent, error) {
	resp, err := call[*OpenGetLayoutResp](c.conn, c.addr, &OpenGetLayoutReq{Parent: parent, Name: name})
	if err != nil {
		return 0, nil, err
	}
	return resp.Ino, resp.Layout, nil
}

// SetLayout records a file's data placement.
func (c *MDSClient) SetLayout(ino inode.Ino, layout []extent.Extent) error {
	_, err := call[*SetLayoutResp](c.conn, c.addr, &SetLayoutReq{Ino: ino, Layout: layout})
	return err
}

// NoteExtentChurn reports mapping churn from a data phase.
func (c *MDSClient) NoteExtentChurn(units int) error {
	req := extentChurnReqPool.get()
	req.Units = units
	_, err := call[*ExtentChurnResp](c.conn, c.addr, req)
	extentChurnReqPool.put(req)
	return err
}

// Sync flushes the metadata file system.
func (c *MDSClient) Sync() error {
	_, err := call[*MDSSyncResp](c.conn, c.addr, &MDSSyncReq{})
	return err
}

// PlaceReplicas asks the MDS to place a file's replica sets from the
// client's capacity/load observations.
func (c *MDSClient) PlaceReplicas(ino inode.Ino, comps, rf int, in []replica.PlaceInput) ([][]int, error) {
	resp, err := call[*PlaceReplicasResp](c.conn, c.addr, &PlaceReplicasReq{
		Ino: ino, Comps: comps, RF: rf, Inputs: in,
	})
	if err != nil {
		return nil, err
	}
	return resp.Sets, nil
}

// GetReplicaLayout fetches a file's replica sets.
func (c *MDSClient) GetReplicaLayout(ino inode.Ino) ([][]int, error) {
	resp, err := call[*GetReplicaLayoutResp](c.conn, c.addr, &GetReplicaLayoutReq{Ino: ino})
	if err != nil {
		return nil, err
	}
	return resp.Sets, nil
}

// SetReplicaLayout updates one component's replica set after a repair.
func (c *MDSClient) SetReplicaLayout(ino inode.Ino, comp int, replicas []int) error {
	_, err := call[*SetReplicaLayoutResp](c.conn, c.addr, &SetReplicaLayoutReq{
		Ino: ino, Comp: comp, Replicas: replicas,
	})
	return err
}
