package mdscluster

import (
	"fmt"

	"redbud/internal/inode"
)

// MkGiantDir creates an extreme large directory partitioned across every
// server: "subfiles in the extreme large directory are assigned to and
// managed by different servers". The creating server becomes the primary,
// holding the collected name-hash index.
func (c *Cluster) MkGiantDir(parent DirRef, name string) (DirRef, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	primary := c.assign(parent, name)
	gd := &giantDir{
		primary: primary,
		parts:   make([]inode.Ino, len(c.servers)),
		hashes:  make(map[uint64]int),
	}
	var ref DirRef
	for i, s := range c.servers {
		c.rpcs++
		partName := name
		if i != primary {
			partName = fmt.Sprintf("%s.part%d", name, i)
		}
		ino, err := c.clients[i].Mkdir(s.Root(), partName)
		if err != nil {
			return DirRef{}, err
		}
		gd.parts[i] = ino
		if i == primary {
			ref = DirRef{Server: i, Ino: ino}
		}
	}
	c.giants[ref] = gd
	return ref, nil
}

// GiantCreate creates an entry in a giant directory: the entry lands on
// the server its name hashes to, and the primary records the hash.
func (c *Cluster) GiantCreate(dir DirRef, name string) (inode.Ino, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gd, ok := c.giants[dir]
	if !ok {
		return 0, fmt.Errorf("mdscluster: %v is not a giant directory", dir)
	}
	h := hashName(name)
	owner := int(h % uint64(len(c.servers)))
	c.rpcs++
	ino, err := c.clients[owner].Create(gd.parts[owner], name)
	if err != nil {
		return 0, err
	}
	// "the primary server to collect the hash value of the subfiles'
	// name" — one more request when the owner is not the primary.
	if owner != gd.primary {
		c.rpcs++
	}
	gd.hashes[h] = owner + 1
	return ino, nil
}

// GiantLookup resolves a name in a giant directory. With the collected
// hash index, the primary answers membership directly and at most one
// subordinate is consulted; without it (indexed=false), every partition
// must be searched — the broadcast the index exists to avoid.
func (c *Cluster) GiantLookup(dir DirRef, name string, indexed bool) (inode.Ino, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gd, ok := c.giants[dir]
	if !ok {
		return 0, fmt.Errorf("mdscluster: %v is not a giant directory", dir)
	}
	if indexed {
		c.rpcs++ // primary consults its hash index
		ownerPlus1 := gd.hashes[hashName(name)]
		if ownerPlus1 == 0 {
			return 0, fmt.Errorf("mdscluster: %q not found (index)", name)
		}
		owner := ownerPlus1 - 1
		if owner != gd.primary {
			c.rpcs++
		}
		return c.clients[owner].Lookup(gd.parts[owner], name)
	}
	// Unindexed: broadcast to every partition.
	var found inode.Ino
	var ferr error = fmt.Errorf("mdscluster: %q not found (broadcast)", name)
	for i := range c.clients {
		c.rpcs++
		if ino, err := c.clients[i].Lookup(gd.parts[i], name); err == nil {
			found, ferr = ino, nil
		}
	}
	return found, ferr
}

// GiantEntries returns the per-server entry counts of a giant directory,
// for balance checks.
func (c *Cluster) GiantEntries(dir DirRef) ([]int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gd, ok := c.giants[dir]
	if !ok {
		return nil, fmt.Errorf("mdscluster: %v is not a giant directory", dir)
	}
	out := make([]int, len(c.servers))
	for i, s := range c.servers {
		n, err := s.FS().Entries(gd.parts[i])
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}
