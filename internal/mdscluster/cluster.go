// Package mdscluster implements the metadata-server cluster of the paper's
// §4.C–§4.D: multiple MDS nodes sharing one namespace, with support for
// extreme large ("giant") directories and the two metadata-distribution
// strategies whose interaction with embedded directories the paper
// analyzes.
//
//   - Subtree distribution delegates whole directory subtrees to individual
//     servers: "all metadata in the subtree-based partition are delegated
//     to an individual metadata server. Since on-disk metadata of a
//     directory's subfiles is often accessed by the same metadata server,
//     embedded directory algorithm can be integrated in the metadata
//     storage seamlessly."
//   - Hash distribution spreads entries by name hash, sacrificing locality
//     for load balance: "inode structures of the subfiles in the same
//     directory are often managed by different servers in the cluster...
//     the embedded directory can not improve the disk performance."
//
// Giant directories (millions of entries, e.g. one checkpoint file per
// process on an 18,688-node Cray) are partitioned across all servers, and
// "the cluster using embedded directory algorithm enforces the primary
// server to collect the hash value of the subfiles' name. Therefore, to
// lookup a specific file, the primary server find whether the hash value
// of the file name exists, avoiding to incur extra interactions with the
// subordinate servers."
package mdscluster

import (
	"fmt"
	"hash/fnv"
	"sync"

	"redbud/internal/inode"
	"redbud/internal/mdfs"
	"redbud/internal/mds"
	"redbud/internal/netsim"
	"redbud/internal/rpc"
)

// Distribution selects how directories are assigned to servers.
type Distribution int

// Distribution strategies.
const (
	// DistributeSubtree keeps each directory's entries on one server,
	// delegating top-level subtrees round-robin.
	DistributeSubtree Distribution = iota
	// DistributeHash assigns every directory (and thus its entries'
	// metadata) by pathname hash, destroying subtree locality.
	DistributeHash
)

// String names the strategy.
func (d Distribution) String() string {
	if d == DistributeHash {
		return "hash"
	}
	return "subtree"
}

// DirRef names a directory in the cluster namespace: the server that owns
// it plus its inode there.
type DirRef struct {
	Server int
	Ino    inode.Ino
}

// Cluster is a namespace spread over several metadata servers. Every
// member is addressable: server i sits behind an rpc endpoint at "mds<i>"
// reached over its own GbE link, and all cluster operations go through
// the typed clients — the same message boundary the single-MDS mount
// uses.
type Cluster struct {
	dist    Distribution
	mu      sync.Mutex
	servers []*mds.Server
	conn    *rpc.Conn
	clients []*rpc.MDSClient
	links   []*netsim.Link
	// dirs maps cluster-visible directory refs to their assignment.
	nextTop int
	giants  map[DirRef]*giantDir
	// rpcs counts cross-server metadata requests issued by operations.
	rpcs int64
}

// giantDir is an extreme large directory partitioned across all servers.
type giantDir struct {
	primary int
	parts   []inode.Ino // per-server partition directory
	// hashes is the primary's collected name-hash index: hash → owning
	// server (+1, so zero means absent).
	hashes map[uint64]int
}

// New builds a cluster of n metadata servers in the given layout.
func New(n int, layout mdfs.Layout, dist Distribution) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("mdscluster: need at least one server")
	}
	c := &Cluster{dist: dist, giants: make(map[DirRef]*giantDir), conn: rpc.NewConn(rpc.ClientConfig{})}
	for i := 0; i < n; i++ {
		cfg := mds.DefaultConfig(layout)
		cfg.FS.SyncWrites = true
		s, err := mds.New(cfg)
		if err != nil {
			return nil, err
		}
		c.servers = append(c.servers, s)
		addr := Addr(i)
		link := netsim.NewLink(netsim.GbE())
		c.conn.Register(addr, rpc.NewMDSEndpoint(addr, s), link)
		c.clients = append(c.clients, rpc.NewMDSClient(c.conn, addr))
		c.links = append(c.links, link)
	}
	return c, nil
}

// Addr is member i's endpoint address on the cluster transport.
func Addr(i int) string { return fmt.Sprintf("mds%d", i) }

// Servers returns the number of member servers.
func (c *Cluster) Servers() int { return len(c.servers) }

// Server exposes member i for measurement.
func (c *Cluster) Server(i int) *mds.Server { return c.servers[i] }

// Client exposes the typed rpc client of member i.
func (c *Cluster) Client(i int) *rpc.MDSClient { return c.clients[i] }

// Link exposes member i's GbE link for measurement.
func (c *Cluster) Link(i int) *netsim.Link { return c.links[i] }

// RPCs returns the count of server requests the cluster operations issued,
// including fan-out requests.
func (c *Cluster) RPCs() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rpcs
}

// Root returns the cluster root (owned by server 0).
func (c *Cluster) Root() DirRef {
	return DirRef{Server: 0, Ino: c.servers[0].Root()}
}

// hashName hashes a name for placement and for the giant-directory index.
func hashName(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// assign picks the owning server for a new directory under parent.
func (c *Cluster) assign(parent DirRef, name string) int {
	switch c.dist {
	case DistributeHash:
		return int(hashName(name) % uint64(len(c.servers)))
	default:
		if parent == c.Root() {
			// Delegate top-level subtrees round-robin.
			c.nextTop++
			return (c.nextTop - 1) % len(c.servers)
		}
		return parent.Server
	}
}

// Mkdir creates a directory, assigning it per the distribution strategy.
// Cross-server directories are materialized as top-level directories on
// their owner, with the parent linkage kept in the cluster map (a real
// implementation would store a remote-entry stub; the disk traffic of the
// local create is what the experiments measure).
func (c *Cluster) Mkdir(parent DirRef, name string) (DirRef, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner := c.assign(parent, name)
	c.rpcs++
	var ino inode.Ino
	var err error
	if owner == parent.Server {
		ino, err = c.clients[owner].Mkdir(parent.Ino, name)
	} else {
		// Remote placement: the directory body lives on the owner.
		ino, err = c.clients[owner].Mkdir(c.servers[owner].Root(), fmt.Sprintf("%d.%s", parent.Server, name))
		c.rpcs++ // the stub insertion at the parent's server
	}
	if err != nil {
		return DirRef{}, err
	}
	return DirRef{Server: owner, Ino: ino}, nil
}

// Create creates a file in a (non-giant) directory.
func (c *Cluster) Create(dir DirRef, name string) (inode.Ino, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rpcs++
	if c.dist == DistributeHash {
		// The entry's metadata lands on the server its name hashes
		// to; the directory's server also records the entry.
		owner := int(hashName(name) % uint64(len(c.servers)))
		if owner != dir.Server {
			c.rpcs++
			if _, err := c.clients[owner].Create(c.servers[owner].Root(), fmt.Sprintf("h%d.%s", dir.Server, name)); err != nil {
				return 0, err
			}
		}
	}
	return c.clients[dir.Server].Create(dir.Ino, name)
}

// ReaddirPlus lists a directory with inode contents. Under subtree
// distribution this is one server's sequential sweep; under hash
// distribution the inodes are scattered across the cluster and every
// server must be consulted.
func (c *Cluster) ReaddirPlus(dir DirRef) ([]inode.Inode, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rpcs++
	recs, err := c.clients[dir.Server].ReaddirPlus(dir.Ino)
	if err != nil {
		return nil, err
	}
	if c.dist == DistributeHash {
		// Gather the scattered inode contents.
		for i := range c.clients {
			if i == dir.Server {
				continue
			}
			c.rpcs++
			if _, err := c.clients[i].ReaddirPlus(c.servers[i].Root()); err != nil {
				return nil, err
			}
		}
	}
	return recs, nil
}

// DiskRequests sums the block-layer request counts of every member MDS.
func (c *Cluster) DiskRequests() int64 {
	var total int64
	for _, s := range c.servers {
		total += s.FS().Store().Disk().Stats().Requests
	}
	return total
}

// Sync flushes every member.
func (c *Cluster) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cl := range c.clients {
		if err := cl.Sync(); err != nil {
			return err
		}
	}
	return nil
}
