package mdscluster_test

import (
	"fmt"
	"log"

	"redbud/internal/mdfs"
	"redbud/internal/mdscluster"
)

// Example demonstrates the §4.C giant-directory design: a checkpoint
// directory with one file per rank, partitioned across an MDS cluster,
// where the primary's collected name-hash index answers lookups without
// broadcasting.
func Example() {
	cluster, err := mdscluster.New(4, mdfs.LayoutEmbedded, mdscluster.DistributeSubtree)
	if err != nil {
		log.Fatal(err)
	}
	giant, err := cluster.MkGiantDir(cluster.Root(), "checkpoints")
	if err != nil {
		log.Fatal(err)
	}
	for rank := 0; rank < 1000; rank++ {
		if _, err := cluster.GiantCreate(giant, fmt.Sprintf("rank-%04d.ckpt", rank)); err != nil {
			log.Fatal(err)
		}
	}
	before := cluster.RPCs()
	if _, err := cluster.GiantLookup(giant, "rank-0042.ckpt", true); err != nil {
		log.Fatal(err)
	}
	indexed := cluster.RPCs() - before
	before = cluster.RPCs()
	if _, err := cluster.GiantLookup(giant, "rank-0042.ckpt", false); err != nil {
		log.Fatal(err)
	}
	broadcast := cluster.RPCs() - before
	fmt.Printf("indexed lookup within 2 RPCs: %v; broadcast lookup: %d RPCs\n", indexed <= 2, broadcast)
	// Output: indexed lookup within 2 RPCs: true; broadcast lookup: 4 RPCs
}
