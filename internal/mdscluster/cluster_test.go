package mdscluster

import (
	"fmt"
	"testing"

	"redbud/internal/mdfs"
)

func TestSubtreeDistributionKeepsLocality(t *testing.T) {
	c, err := New(4, mdfs.LayoutEmbedded, DistributeSubtree)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Mkdir(c.Root(), "proj")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Mkdir(d, "src")
	if err != nil {
		t.Fatal(err)
	}
	if sub.Server != d.Server {
		t.Fatalf("subtree distribution must keep children on the parent's server: %d vs %d", sub.Server, d.Server)
	}
	// Top-level directories spread round-robin.
	d2, _ := c.Mkdir(c.Root(), "proj2")
	if d2.Server == d.Server {
		t.Fatal("top-level subtrees should be delegated to different servers")
	}
}

func TestHashDistributionBreaksEmbeddedBenefit(t *testing.T) {
	// The §4.D limitation: under hash distribution the embedded
	// directory cannot serve readdirplus with one sequential sweep —
	// every server must be consulted.
	requests := func(dist Distribution) int64 {
		c, err := New(4, mdfs.LayoutEmbedded, dist)
		if err != nil {
			t.Fatal(err)
		}
		d, err := c.Mkdir(c.Root(), "data")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			if _, err := c.Create(d, fmt.Sprintf("f%04d", i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Sync(); err != nil {
			t.Fatal(err)
		}
		for i := range make([]int, c.Servers()) {
			c.Server(i).FS().Store().DropCaches()
		}
		before := c.DiskRequests()
		beforeRPC := c.RPCs()
		if _, err := c.ReaddirPlus(d); err != nil {
			t.Fatal(err)
		}
		t.Logf("%v: %d disk requests, %d RPCs", dist, c.DiskRequests()-before, c.RPCs()-beforeRPC)
		return c.DiskRequests() - before
	}
	subtree := requests(DistributeSubtree)
	hash := requests(DistributeHash)
	if hash <= subtree {
		t.Fatalf("hash distribution should cost more disk requests (%d) than subtree (%d)", hash, subtree)
	}
}

func TestGiantDirectoryPartitioning(t *testing.T) {
	c, err := New(4, mdfs.LayoutEmbedded, DistributeSubtree)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.MkGiantDir(c.Root(), "checkpoints")
	if err != nil {
		t.Fatal(err)
	}
	const files = 2000
	for i := 0; i < files; i++ {
		if _, err := c.GiantCreate(g, fmt.Sprintf("rank-%06d.ckpt", i)); err != nil {
			t.Fatal(err)
		}
	}
	counts, err := c.GiantEntries(g)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, n := range counts {
		total += n
		// Hash partitioning should be roughly balanced.
		if n < files/8 || n > files {
			t.Errorf("server %d holds %d entries, want near %d", i, n, files/4)
		}
	}
	if total != files {
		t.Fatalf("entries across partitions = %d, want %d", total, files)
	}
}

func TestGiantLookupIndexAvoidsBroadcast(t *testing.T) {
	c, err := New(8, mdfs.LayoutEmbedded, DistributeSubtree)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.MkGiantDir(c.Root(), "giant")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := c.GiantCreate(g, fmt.Sprintf("f%05d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := c.RPCs()
	ino, err := c.GiantLookup(g, "f00042", true)
	if err != nil {
		t.Fatal(err)
	}
	indexed := c.RPCs() - before
	before = c.RPCs()
	ino2, err := c.GiantLookup(g, "f00042", false)
	if err != nil {
		t.Fatal(err)
	}
	broadcast := c.RPCs() - before
	if ino != ino2 {
		t.Fatalf("indexed and broadcast lookups disagree: %v vs %v", ino, ino2)
	}
	if indexed > 2 {
		t.Fatalf("indexed lookup cost %d RPCs, want <= 2", indexed)
	}
	if broadcast != int64(c.Servers()) {
		t.Fatalf("broadcast lookup cost %d RPCs, want %d", broadcast, c.Servers())
	}
	// Misses are answered by the primary alone.
	before = c.RPCs()
	if _, err := c.GiantLookup(g, "absent", true); err == nil {
		t.Fatal("lookup of absent name should fail")
	}
	if got := c.RPCs() - before; got != 1 {
		t.Fatalf("indexed negative lookup cost %d RPCs, want 1", got)
	}
}

func TestGiantDirectoryErrors(t *testing.T) {
	c, _ := New(2, mdfs.LayoutEmbedded, DistributeSubtree)
	d, _ := c.Mkdir(c.Root(), "plain")
	if _, err := c.GiantCreate(d, "f"); err == nil {
		t.Fatal("GiantCreate on a plain directory should fail")
	}
	if _, err := c.GiantLookup(d, "f", true); err == nil {
		t.Fatal("GiantLookup on a plain directory should fail")
	}
}
