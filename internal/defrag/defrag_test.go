package defrag

import (
	"strings"
	"testing"

	"redbud/internal/alloc"
	"redbud/internal/core"
	"redbud/internal/ost"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

func vanillaFactory(src core.BlockSource, _ int64) core.Policy {
	return core.NewVanilla(src)
}

// agedServer interleaves writes from n vanilla-policy objects so every
// object lands in rounds alternating extents — a miniature of the paper's
// aged volume.
func agedServer(t *testing.T, n int, rounds, chunk int64) *ost.Server {
	t.Helper()
	s := ost.NewServer(0, ost.DefaultConfig())
	for id := 1; id <= n; id++ {
		if err := s.CreateObject(ost.ObjectID(id), vanillaFactory, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < rounds; i++ {
		for id := 1; id <= n; id++ {
			st := core.StreamID{Client: 1, PID: uint32(id)}
			if err := s.Write(ost.ObjectID(id), st, i*chunk, chunk); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Flush()
	return s
}

// TestDefragPreservesDataAndReducesExtents is the end-to-end property:
// after a full scan/plan/drain cycle every object's extent count is
// strictly reduced to the ideal, the logical→data mapping is untouched
// (every read verifies block tags end to end), no space leaks, and the
// server passes its consistency walk.
func TestDefragPreservesDataAndReducesExtents(t *testing.T) {
	const objects, rounds, chunk = 4, 16, 4
	s := agedServer(t, objects, rounds, chunk)
	freeBefore := s.Allocator().FreeBlocks()
	before := make(map[ost.ObjectID]ost.FragReport)
	for _, r := range s.FragReportAll() {
		before[r.Object] = r
	}

	c := NewController(s, DefaultConfig())
	if added := c.ScanAndPlan(); added != objects {
		t.Fatalf("ScanAndPlan planned %d objects, want %d", added, objects)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}

	for _, r := range s.FragReportAll() {
		b := before[r.Object]
		if r.Extents >= b.Extents {
			t.Fatalf("object %d: extents %d → %d, want a strict reduction", r.Object, b.Extents, r.Extents)
		}
		if r.Extents != r.IdealExtents {
			t.Fatalf("object %d: %d extents, ideal %d", r.Object, r.Extents, r.IdealExtents)
		}
		if r.MappedBlocks != b.MappedBlocks {
			t.Fatalf("object %d: mapped %d → %d, defrag must not change the logical image", r.Object, b.MappedBlocks, r.MappedBlocks)
		}
		if err := s.Read(r.Object, 0, r.MappedBlocks); err != nil {
			t.Fatalf("object %d data after defrag: %v", r.Object, err)
		}
	}
	if rep := s.CheckConsistency(); !rep.Clean() || rep.LeakedBlocks != 0 {
		t.Fatalf("post-defrag walk: leaks=%d problems=%s", rep.LeakedBlocks, strings.Join(rep.Problems, "; "))
	}
	if free := s.Allocator().FreeBlocks(); free != freeBefore {
		t.Fatalf("FreeBlocks %d → %d, defrag must conserve space", freeBefore, free)
	}
	if resv := s.Allocator().ReservedBlocks(); resv != 0 {
		t.Fatalf("ReservedBlocks = %d, want all destinations converted or rolled back", resv)
	}

	st := c.Stats()
	if st.ObjectsMigrated != objects || st.BlocksMoved != int64(objects)*rounds*chunk {
		t.Fatalf("stats = %+v, want %d objects and %d blocks", st, objects, objects*rounds*chunk)
	}
	if st.ExtentsAfter >= st.ExtentsBefore {
		t.Fatalf("extents %d → %d, want a reduction", st.ExtentsBefore, st.ExtentsAfter)
	}

	// A second pass finds nothing: the volume is defragmented.
	if added := c.ScanAndPlan(); added != 0 {
		t.Fatalf("second pass planned %d objects, want 0", added)
	}
}

func TestScanOrdersByScore(t *testing.T) {
	s := agedServer(t, 3, 8, 4)
	c := NewController(s, DefaultConfig())
	cands := c.Scan()
	if len(cands) != 3 {
		t.Fatalf("Scan found %d candidates, want 3", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatalf("candidates out of order: %v before %v", cands[i-1], cands[i])
		}
	}
	// MinExtents excludes healthy objects entirely.
	c2 := NewController(s, Config{MinExtents: 100})
	if got := c2.Scan(); len(got) != 0 {
		t.Fatalf("MinExtents=100 still found %d candidates", len(got))
	}
}

func TestStepYieldsToForeground(t *testing.T) {
	s := agedServer(t, 2, 8, 4)
	c := NewController(s, DefaultConfig())
	if c.ScanAndPlan() == 0 {
		t.Fatal("nothing planned")
	}
	// A small write stays queued below the batch threshold: foreground
	// work is pending and the mover must yield.
	if err := s.Write(1, core.StreamID{Client: 9, PID: 9}, 100, 4); err != nil {
		t.Fatal(err)
	}
	if s.PendingRequests() == 0 {
		t.Fatal("test setup: expected a queued foreground request")
	}
	moved, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 || c.Stats().Preempted != 1 {
		t.Fatalf("moved=%d preempted=%d, want the step to yield", moved, c.Stats().Preempted)
	}
	s.Flush()
	if moved, err = c.Step(); err != nil || moved == 0 {
		t.Fatalf("after flush Step moved %d (%v), want progress", moved, err)
	}
}

func TestTokenBucketThrottles(t *testing.T) {
	s := agedServer(t, 2, 8, 4)
	cfg := DefaultConfig()
	cfg.SliceBlocks = 16
	cfg.RateBlocksPerSec = 16
	cfg.BurstBlocks = 16
	c := NewController(s, cfg)
	var now sim.Ns
	c.SetTimeSource(func() sim.Ns { return now })
	if c.ScanAndPlan() == 0 {
		t.Fatal("nothing planned")
	}
	// No simulated time has passed: the bucket is empty.
	if moved, _ := c.Step(); moved != 0 {
		t.Fatalf("moved %d blocks with an empty bucket", moved)
	}
	if c.Stats().Throttled != 1 {
		t.Fatalf("Throttled = %d, want 1", c.Stats().Throttled)
	}
	// One simulated second earns exactly one slice.
	now += sim.Ns(1e9)
	if moved, _ := c.Step(); moved == 0 {
		t.Fatal("bucket refilled but step did not run")
	}
	// The next step is throttled again until more time passes (the refund
	// of the short slice may allow a couple of small moves first).
	for i := 0; i < 10; i++ {
		c.Step()
	}
	if th := c.Stats().Throttled; th < 2 {
		t.Fatalf("Throttled = %d, want the rate limit to keep biting", th)
	}
	// Drain ignores the throttle entirely and finishes the work.
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d after Drain", c.Pending())
	}
}

func TestPlannerAbortsWithoutContiguousSpace(t *testing.T) {
	// A tiny device: 2 objects × 8 rounds × 4 blocks = 64 blocks used of
	// 256; then pin alternating free blocks so no free run reaches
	// MinDestRun and every plan must be abandoned cleanly.
	cfg := ost.DefaultConfig()
	cfg.Blocks = 256
	cfg.GroupBlocks = 256
	s := ost.NewServer(0, cfg)
	for id := 1; id <= 2; id++ {
		if err := s.CreateObject(ost.ObjectID(id), vanillaFactory, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 8; i++ {
		for id := 1; id <= 2; id++ {
			if err := s.Write(ost.ObjectID(id), core.StreamID{Client: 1, PID: uint32(id)}, i*4, 4); err != nil {
				t.Fatal(err)
			}
		}
	}
	s.Flush()
	// Shatter the free space: pin two of every four blocks so no free run
	// exceeds two blocks.
	st := s.Allocator().FreeContig()
	for b := st.LargestStart; b+4 <= st.LargestStart+st.LargestRun; b += 4 {
		if err := s.Allocator().AllocExact(999, alloc.Range{Start: b, Count: 2}); err != nil {
			t.Fatal(err)
		}
	}
	dcfg := DefaultConfig()
	dcfg.MinDestRun = 8
	c := NewController(s, dcfg)
	if added := c.ScanAndPlan(); added != 0 {
		t.Fatalf("planned %d objects with no contiguous space, want 0", added)
	}
	if sk := c.Stats().Skipped; sk == 0 {
		t.Fatal("Skipped = 0, want abandoned candidates counted")
	}
	if resv := s.Allocator().ReservedBlocks(); resv != 0 {
		t.Fatalf("ReservedBlocks = %d, want aborted plans rolled back", resv)
	}
}

func TestEngineAggregatesAndInstrument(t *testing.T) {
	s0 := agedServer(t, 2, 8, 4)
	s1 := agedServer(t, 2, 8, 4)
	e := NewEngine(DefaultConfig(), s0, s1)
	reg := telemetry.NewRegistry()
	e.Instrument(reg, telemetry.Labels{"fs": "test"})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.ObjectsMigrated != 4 {
		t.Fatalf("ObjectsMigrated = %d, want 4 across both OSTs", st.ObjectsMigrated)
	}
	var moved, pending int64
	seen := map[string]bool{}
	for _, m := range reg.Snapshot() {
		seen[m.Name] = true
		switch m.Name {
		case "defrag_blocks_moved":
			moved += m.Value
		case "defrag_plans_pending":
			pending += m.Value
		}
	}
	if moved != st.BlocksMoved {
		t.Fatalf("registry blocks_moved = %d, stats say %d", moved, st.BlocksMoved)
	}
	if pending != 0 {
		t.Fatalf("plans_pending = %d after Run", pending)
	}
	for _, name := range []string{"defrag_slices", "defrag_extents_before", "defrag_extents_after", "defrag_slice_ns"} {
		if !seen[name] {
			t.Errorf("metric %s not published", name)
		}
	}
}
