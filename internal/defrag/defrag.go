// Package defrag implements the online defragmentation engine: the repair
// side of the MiF story. The paper's allocation policies *prevent*
// intra-file fragmentation at write time; its aging experiments (Fig. 9,
// §5) show what a churned volume looks like once prevention was not enough
// — and offer no way back. This package closes the loop with a background
// scan/plan/migrate pipeline that runs against live IO servers:
//
//   - the scanner walks each OST's objects, scores every extent map
//     (segment count, paper-style fragmentation degree, physical spread)
//     and produces a prioritized candidate list;
//   - the planner reserves a contiguous destination range through the
//     allocator's soft-reservation machinery — the same mechanism the MiF
//     sequential window uses — so foreground allocation never lands inside
//     a migration target;
//   - the mover migrates candidates slice by slice through the elevator
//     and disk model, rate-limited by a token bucket over simulated time
//     and yielding to queued foreground requests, with the crash-safe
//     commit ordering (write new, commit map, then free old) provided by
//     ost.CopyRange / ost.FreeMigrated.
//
// One Controller drives one IO server; an Engine aggregates the per-OST
// controllers of a mount (internal/pfs wires one up per file system).
package defrag

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"redbud/internal/alloc"
	"redbud/internal/ost"
	"redbud/internal/sim"
	"redbud/internal/telemetry"
)

// Config tunes the engine. The zero value is unusable; start from
// DefaultConfig.
type Config struct {
	// MinExtents is the smallest segment count that makes an object a
	// candidate: an object in MinExtents-1 or fewer pieces is left alone.
	MinExtents int
	// MinScore is the scanner score threshold; candidates at or below it
	// are skipped. Zero selects any object whose layout can improve.
	MinScore float64
	// SliceBlocks is the largest number of blocks one mover step
	// migrates — the preemption granularity: foreground traffic waits at
	// most one slice.
	SliceBlocks int64
	// RateBlocksPerSec throttles the mover: a token bucket refilled at
	// this rate over simulated time. Zero disables the throttle.
	RateBlocksPerSec int64
	// BurstBlocks is the token bucket capacity; zero selects SliceBlocks.
	BurstBlocks int64
	// MinDestRun is the shortest destination run the planner accepts.
	// When free space is so fragmented that a reservation falls below
	// it, the candidate is abandoned rather than migrated badly.
	MinDestRun int64
	// MaxObjectsPerPass caps how many candidates one scan pass plans;
	// zero plans them all.
	MaxObjectsPerPass int
}

// DefaultConfig returns a conservative engine: migrate anything improvable
// in 256-block (1 MiB) slices, unthrottled.
func DefaultConfig() Config {
	return Config{
		MinExtents:  2,
		SliceBlocks: 256,
		MinDestRun:  16,
	}
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.MinExtents <= 0 {
		c.MinExtents = d.MinExtents
	}
	if c.SliceBlocks <= 0 {
		c.SliceBlocks = d.SliceBlocks
	}
	if c.BurstBlocks <= 0 {
		c.BurstBlocks = c.SliceBlocks
	}
	if c.MinDestRun <= 0 {
		c.MinDestRun = d.MinDestRun
	}
	return c
}

// Candidate is one scored scan result.
type Candidate struct {
	Report ost.FragReport
	Score  float64
}

// Score rates how much an object would gain from defragmentation: zero for
// a perfect layout, growing with the excess fragmentation degree (extents
// beyond the logical minimum) scaled by the physical spread ratio, so
// objects whose pieces scatter widely across the device sort first.
func Score(r ost.FragReport) float64 {
	if r.MappedBlocks == 0 || r.Extents <= r.IdealExtents {
		return 0
	}
	spread := float64(r.SpanBlocks) / float64(r.MappedBlocks)
	if spread < 1 {
		spread = 1
	}
	return (r.Degree - 1) * spread
}

// Stats are the per-controller counters.
type Stats struct {
	// Scans counts scan passes; Candidates the objects that scored above
	// threshold across them.
	Scans      int64
	Candidates int64
	// Planned counts candidates that got a destination reservation;
	// Skipped those abandoned (no contiguous space, or no improvement).
	Planned int64
	Skipped int64
	// ObjectsMigrated, BlocksMoved and Slices measure completed work.
	ObjectsMigrated int64
	BlocksMoved     int64
	Slices          int64
	// Preempted counts steps that yielded to queued foreground requests,
	// Throttled steps denied by the token bucket — the foreground-
	// interference observables.
	Preempted int64
	Throttled int64
	// ExtentsBefore and ExtentsAfter sum the segment counts of migrated
	// objects at plan and at completion time.
	ExtentsBefore int64
	ExtentsAfter  int64
	// MoveNs is the device service time consumed by migration I/O.
	MoveNs sim.Ns
}

// Add returns the field-wise sum, for aggregating controllers.
func (s Stats) Add(o Stats) Stats {
	s.Scans += o.Scans
	s.Candidates += o.Candidates
	s.Planned += o.Planned
	s.Skipped += o.Skipped
	s.ObjectsMigrated += o.ObjectsMigrated
	s.BlocksMoved += o.BlocksMoved
	s.Slices += o.Slices
	s.Preempted += o.Preempted
	s.Throttled += o.Throttled
	s.ExtentsBefore += o.ExtentsBefore
	s.ExtentsAfter += o.ExtentsAfter
	s.MoveNs += o.MoveNs
	return s
}

// plan is one object's migration in progress.
type plan struct {
	object ost.ObjectID
	// dst holds the reserved destination ranges; dstIdx/dstOff track how
	// much of them has been consumed.
	dst    []alloc.Range
	dstIdx int
	dstOff int64
	// cursor is the next logical block to migrate.
	cursor        int64
	extentsBefore int
}

// remaining returns the unconsumed destination capacity.
func (p *plan) remaining() int64 {
	var n int64
	for i := p.dstIdx; i < len(p.dst); i++ {
		n += p.dst[i].Count
	}
	return n - p.dstOff
}

// defragOwnerBase keeps defrag reservation owners disjoint from the
// policy-stream owners core.nextOwner hands out (which count up from 1).
const defragOwnerBase alloc.Owner = 1 << 40

// ownerSeq hands out process-unique defrag owners.
var ownerSeq atomic.Uint64

// Controller drives defragmentation of one IO server. All methods are safe
// for concurrent use with each other and with foreground traffic on the
// server.
type Controller struct {
	srv   *ost.Server
	cfg   Config
	owner alloc.Owner

	mu      sync.Mutex
	plans   []*plan
	tokens  float64
	lastNs  sim.Ns
	timeSrc func() sim.Ns
	stats   Stats
	tracer  *telemetry.Tracer

	sliceHist *telemetry.Histogram
	// events, when attached, records each foreground preemption as a
	// structured event; evDetail names the controller's server.
	events   *telemetry.EventLog
	evDetail string
}

// NewController builds a controller for one server. The token bucket's
// simulated-time source defaults to the server disk's busy time, so the
// mover earns budget as the system (foreground and defrag alike) makes the
// device work; tests may substitute a source with SetTimeSource.
func NewController(srv *ost.Server, cfg Config) *Controller {
	c := &Controller{
		srv:   srv,
		cfg:   cfg.withDefaults(),
		owner: defragOwnerBase + alloc.Owner(ownerSeq.Add(1)),
	}
	c.timeSrc = func() sim.Ns { return srv.Disk().Stats().BusyNs }
	return c
}

// Server returns the IO server this controller drives.
func (c *Controller) Server() *ost.Server { return c.srv }

// SetTimeSource replaces the throttle's simulated-time source.
func (c *Controller) SetTimeSource(fn func() sim.Ns) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeSrc = fn
}

// SetTracer attaches (or with nil detaches) the span tracer; scan passes
// and migration slices are recorded as "defrag" spans.
func (c *Controller) SetTracer(t *telemetry.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = t
}

// Stats returns a snapshot of the controller counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Pending returns the number of plans not yet completed.
func (c *Controller) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.plans)
}

// Instrument publishes the controller's counters, the pending-plan gauge,
// and a per-slice device-time histogram into the registry.
func (c *Controller) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	c.mu.Lock()
	c.sliceHist = reg.Histogram("defrag_slice_ns", labels)
	c.events = reg.Events()
	c.evDetail = "ost " + labels["ost"]
	c.mu.Unlock()
	reg.CounterFunc("defrag_blocks_moved", labels, func() int64 { return c.Stats().BlocksMoved })
	reg.CounterFunc("defrag_objects_migrated", labels, func() int64 { return c.Stats().ObjectsMigrated })
	reg.CounterFunc("defrag_slices", labels, func() int64 { return c.Stats().Slices })
	reg.CounterFunc("defrag_preempted", labels, func() int64 { return c.Stats().Preempted })
	reg.CounterFunc("defrag_throttled", labels, func() int64 { return c.Stats().Throttled })
	reg.CounterFunc("defrag_extents_before", labels, func() int64 { return c.Stats().ExtentsBefore })
	reg.CounterFunc("defrag_extents_after", labels, func() int64 { return c.Stats().ExtentsAfter })
	reg.GaugeFunc("defrag_plans_pending", labels, func() int64 { return int64(c.Pending()) })
}

// Scan walks the server's objects and returns the prioritized candidate
// list: everything scoring above the threshold, best first (ties broken by
// object ID for determinism).
func (c *Controller) Scan() []Candidate {
	c.mu.Lock()
	cfg := c.cfg
	t := c.tracer
	c.mu.Unlock()
	var sp *telemetry.ActiveSpan
	if t != nil {
		sp = t.Start("defrag", "scan", 0)
	}
	var out []Candidate
	for _, r := range c.srv.FragReportAll() {
		if r.Extents < cfg.MinExtents {
			continue
		}
		sc := Score(r)
		if sc <= cfg.MinScore {
			continue
		}
		out = append(out, Candidate{Report: r, Score: sc})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Report.Object < out[j].Report.Object
	})
	if cfg.MaxObjectsPerPass > 0 && len(out) > cfg.MaxObjectsPerPass {
		out = out[:cfg.MaxObjectsPerPass]
	}
	c.mu.Lock()
	c.stats.Scans++
	c.stats.Candidates += int64(len(out))
	c.mu.Unlock()
	if sp != nil {
		sp.AnnotateInt("candidates", int64(len(out)))
		sp.End()
	}
	return out
}

// ScanAndPlan runs one scan pass and builds migration plans for the
// candidates, reserving their destinations. It returns the number of plans
// added.
func (c *Controller) ScanAndPlan() int {
	added := 0
	for _, cand := range c.Scan() {
		if c.planOne(cand) {
			added++
		}
	}
	return added
}

// planOne reserves a destination for one candidate and queues its plan.
// Candidates that cannot improve (free space too fragmented to beat the
// current layout) are skipped and their reservations rolled back.
func (c *Controller) planOne(cand Candidate) bool {
	c.mu.Lock()
	cfg := c.cfg
	for _, p := range c.plans {
		if p.object == cand.Report.Object {
			c.mu.Unlock()
			return false // already planned
		}
	}
	c.mu.Unlock()

	need := cand.Report.MappedBlocks
	// Aim at the largest free run: that is where a contiguous home is.
	goal := c.srv.Allocator().FreeContig().LargestStart
	var dst []alloc.Range
	abort := func() bool {
		for _, r := range dst {
			c.srv.Allocator().Unreserve(c.owner, r)
		}
		c.mu.Lock()
		c.stats.Skipped++
		c.mu.Unlock()
		return false
	}
	for need > 0 {
		r, err := c.srv.Allocator().ReserveNear(c.owner, goal, need)
		if err != nil {
			return abort()
		}
		if r.Count < cfg.MinDestRun && r.Count < need {
			c.srv.Allocator().Unreserve(c.owner, r)
			return abort()
		}
		dst = append(dst, r)
		need -= r.Count
		goal = r.End()
	}
	// A migration into as many pieces as the object already has would
	// churn I/O for nothing.
	if len(dst) >= cand.Report.Extents {
		return abort()
	}
	c.mu.Lock()
	c.plans = append(c.plans, &plan{
		object:        cand.Report.Object,
		dst:           dst,
		extentsBefore: cand.Report.Extents,
	})
	c.stats.Planned++
	c.mu.Unlock()
	return true
}

// Step attempts one migration slice: the throttled, preemptible unit of
// background work. It returns the number of blocks moved — zero when there
// is nothing to do, foreground requests are queued (the mover yields), or
// the token bucket is empty. Errors from live-traffic races (the object
// was deleted mid-plan) abandon the plan silently; real I/O errors are
// returned.
func (c *Controller) Step() (int64, error) { return c.step(false) }

// step is Step with a force flag that bypasses the throttle and the
// foreground yield — the drain mode used by batch tools, which must
// terminate even when no foreground traffic advances simulated time.
func (c *Controller) step(force bool) (int64, error) {
	c.mu.Lock()
	if len(c.plans) == 0 {
		c.mu.Unlock()
		return 0, nil
	}
	p := c.plans[0]
	if !force {
		if c.srv.PendingRequests() > 0 {
			c.stats.Preempted++
			c.events.Emit(c.tracer.Now(), "defrag", "preempt", c.evDetail)
			c.mu.Unlock()
			return 0, nil
		}
		if !c.takeTokensLocked() {
			c.stats.Throttled++
			c.mu.Unlock()
			return 0, nil
		}
	}
	cfg := c.cfg
	t := c.tracer
	c.mu.Unlock()

	moved, cost, done, err := c.moveSlice(p, cfg, t)

	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.BlocksMoved += moved
	c.stats.MoveNs += cost
	if moved > 0 {
		c.stats.Slices++
		if c.sliceHist != nil {
			c.sliceHist.Observe(cost)
		}
	}
	// Refund unused budget: tokens were taken for a full slice.
	if !force && cfg.RateBlocksPerSec > 0 {
		c.tokens += float64(cfg.SliceBlocks - moved)
		if c.tokens > float64(cfg.BurstBlocks) {
			c.tokens = float64(cfg.BurstBlocks)
		}
	}
	if done || err != nil {
		c.finishPlanLocked(p, err == nil)
	}
	return moved, err
}

// takeTokensLocked refills the bucket from the simulated clock and takes
// one slice worth of tokens, reporting whether the step may run. A zero
// rate always passes. Callers hold c.mu.
func (c *Controller) takeTokensLocked() bool {
	if c.cfg.RateBlocksPerSec <= 0 {
		return true
	}
	now := c.timeSrc()
	if now > c.lastNs {
		c.tokens += sim.Seconds(now-c.lastNs) * float64(c.cfg.RateBlocksPerSec)
		c.lastNs = now
		if c.tokens > float64(c.cfg.BurstBlocks) {
			c.tokens = float64(c.cfg.BurstBlocks)
		}
	}
	if c.tokens < float64(c.cfg.SliceBlocks) {
		return false
	}
	c.tokens -= float64(c.cfg.SliceBlocks)
	return true
}

// moveSlice migrates up to one slice of plan p and reports the blocks
// moved, the device cost, and whether the plan is finished. A vanished
// object (deleted under live traffic) finishes the plan without error.
func (c *Controller) moveSlice(p *plan, cfg Config, t *telemetry.Tracer) (int64, sim.Ns, bool, error) {
	run, ok, err := c.srv.NextMappedExtent(p.object, p.cursor)
	if err != nil {
		return 0, 0, true, nil // object gone: abandon quietly
	}
	if !ok || p.remaining() == 0 {
		return 0, 0, true, nil // nothing left to move, or capacity spent
	}
	n := run.Count
	if n > cfg.SliceBlocks {
		n = cfg.SliceBlocks
	}
	if left := p.dst[p.dstIdx].Count - p.dstOff; n > left {
		n = left
	}
	dst := alloc.Range{Start: p.dst[p.dstIdx].Start + p.dstOff, Count: n}

	var sp *telemetry.ActiveSpan
	if t != nil {
		sp = t.Start("defrag", "slice", 0)
		sp.AnnotateInt("object", int64(p.object))
		sp.AnnotateInt("blocks", int64(n))
	}
	cost, old, err := c.srv.CopyRange(p.object, c.owner, run.Logical, n, dst)
	if err == nil {
		err = c.srv.FreeMigrated(p.object, old)
	}
	if sp != nil {
		sp.End()
	}
	if err != nil {
		return 0, cost, true, fmt.Errorf("defrag ost%d: %w", c.srv.ID(), err)
	}
	p.cursor = run.Logical + n
	p.dstOff += n
	if p.dstOff == p.dst[p.dstIdx].Count {
		p.dstIdx++
		p.dstOff = 0
	}
	done := p.dstIdx == len(p.dst)
	return n, cost, done, nil
}

// finishPlanLocked retires the head plan: leftover destination space is
// unreserved and the migration outcome recorded. Callers hold c.mu.
func (c *Controller) finishPlanLocked(p *plan, migrated bool) {
	if len(c.plans) > 0 && c.plans[0] == p {
		c.plans = c.plans[1:]
	}
	// Roll back whatever capacity the move did not consume (object
	// truncated mid-plan, or the plan aborted).
	if p.dstIdx < len(p.dst) {
		first := p.dst[p.dstIdx]
		first.Start += p.dstOff
		first.Count -= p.dstOff
		if first.Count > 0 {
			c.srv.Allocator().Unreserve(c.owner, first)
		}
		for _, r := range p.dst[p.dstIdx+1:] {
			c.srv.Allocator().Unreserve(c.owner, r)
		}
	}
	if migrated {
		c.stats.ObjectsMigrated++
		c.stats.ExtentsBefore += int64(p.extentsBefore)
		if r, err := c.srv.FragReport(p.object); err == nil {
			c.stats.ExtentsAfter += int64(r.Extents)
		}
	}
}

// Drain migrates every queued plan to completion, ignoring the throttle
// and the foreground yield. Batch tools (mifctl defrag, the benchmarks)
// use it; the live engine runs Step instead.
func (c *Controller) Drain() error {
	for c.Pending() > 0 {
		if _, err := c.step(true); err != nil {
			return err
		}
	}
	return nil
}

// Abort drops every queued plan, rolling back their reservations.
func (c *Controller) Abort() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.plans) > 0 {
		c.finishPlanLocked(c.plans[0], false)
	}
}

// Engine aggregates the per-OST controllers of one mount.
type Engine struct {
	ctrls []*Controller
}

// NewEngine builds one controller per server.
func NewEngine(cfg Config, srvs ...*ost.Server) *Engine {
	e := &Engine{}
	for _, s := range srvs {
		e.ctrls = append(e.ctrls, NewController(s, cfg))
	}
	return e
}

// Controllers returns the per-OST controllers, indexed like the servers.
func (e *Engine) Controllers() []*Controller { return e.ctrls }

// SetTracer attaches the span tracer to every controller.
func (e *Engine) SetTracer(t *telemetry.Tracer) {
	for _, c := range e.ctrls {
		c.SetTracer(t)
	}
}

// Instrument publishes every controller into the registry, labeled by OST.
func (e *Engine) Instrument(reg *telemetry.Registry, labels telemetry.Labels) {
	for i, c := range e.ctrls {
		c.Instrument(reg, labels.With("ost", fmt.Sprint(i)))
	}
}

// ScanAndPlan runs one scan pass on every OST, returning total plans added.
func (e *Engine) ScanAndPlan() int {
	total := 0
	for _, c := range e.ctrls {
		total += c.ScanAndPlan()
	}
	return total
}

// Step runs one throttled slice per OST, returning total blocks moved.
func (e *Engine) Step() (int64, error) {
	var moved int64
	for _, c := range e.ctrls {
		n, err := c.Step()
		if err != nil {
			return moved, err
		}
		moved += n
	}
	return moved, nil
}

// Pending returns the number of unfinished plans across all OSTs.
func (e *Engine) Pending() int {
	n := 0
	for _, c := range e.ctrls {
		n += c.Pending()
	}
	return n
}

// Drain completes every queued plan on every OST.
func (e *Engine) Drain() error {
	for _, c := range e.ctrls {
		if err := c.Drain(); err != nil {
			return err
		}
	}
	return nil
}

// Run is the batch entry point: one scan/plan pass followed by a full
// drain, returning the aggregated statistics of the engine so far.
func (e *Engine) Run() (Stats, error) {
	e.ScanAndPlan()
	if err := e.Drain(); err != nil {
		return e.Stats(), err
	}
	return e.Stats(), nil
}

// Stats returns the aggregated controller counters.
func (e *Engine) Stats() Stats {
	var total Stats
	for _, c := range e.ctrls {
		total = total.Add(c.Stats())
	}
	return total
}
