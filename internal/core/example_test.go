package core_test

import (
	"fmt"
	"log"

	"redbud/internal/alloc"
	"redbud/internal/core"
)

// Example walks the paper's Figure 3 scenario: three streams extend a
// shared file with one-block requests. The first writes are layout misses
// that open per-stream windows; the second writes hit pre_alloc_layout and
// promote the sequential windows; the third land inside the current
// windows with no trigger at all.
func Example() {
	allocator := alloc.New(1<<16, 1<<14)
	policy := core.NewOnDemand(allocator, core.OnDemandConfig{
		Scale:             2,
		MaxPreallocBlocks: 2048,
		MissThreshold:     4,
	})
	streams := []core.StreamID{{Client: 1, PID: 1}, {Client: 2, PID: 1}, {Client: 3, PID: 1}}
	// T1: logical blocks 100, 200, 300. T2: 101, 201. T3: 102, 202.
	for t, writes := range [][]int64{{100, 200, 300}, {101, 201}, {102, 202}} {
		for i, logical := range writes {
			if _, err := policy.Place(streams[i], logical, 1, 0); err != nil {
				log.Fatal(err)
			}
		}
		st := policy.Stats()
		fmt.Printf("T%d: layout_miss=%d pre_alloc_layout=%d in-window=%d\n",
			t+1, st.LayoutMisses, st.PreallocHits, st.InWindowWrites)
	}
	// Output:
	// T1: layout_miss=3 pre_alloc_layout=0 in-window=0
	// T2: layout_miss=3 pre_alloc_layout=2 in-window=0
	// T3: layout_miss=3 pre_alloc_layout=2 in-window=2
}

// ExampleReservation shows the Figure 1(a) interleaving: the per-inode
// reservation window hands blocks out in arrival order, so two streams'
// logically disjoint writes end up physically adjacent to each other —
// fragmenting both regions.
func ExampleReservation() {
	allocator := alloc.New(1<<16, 1<<14)
	policy := core.NewReservation(allocator, 1024)
	a, b := core.StreamID{Client: 1, PID: 1}, core.StreamID{Client: 2, PID: 1}
	for i := int64(0); i < 3; i++ {
		pa, _ := policy.Place(a, 100+i, 1, 0)
		physA := pa[0].Physical // Place reuses its buffer; read before the next call
		pb, _ := policy.Place(b, 200+i, 1, 0)
		fmt.Printf("A@%d->phys %d, B@%d->phys %d\n",
			100+i, physA, 200+i, pb[0].Physical)
	}
	// Output:
	// A@100->phys 0, B@200->phys 1
	// A@101->phys 2, B@201->phys 3
	// A@102->phys 4, B@202->phys 5
}
