// Package core implements the paper's primary contribution: the MiF
// allocation policies that decide where on disk the blocks of an extending
// file land.
//
// Four policies are provided, matching the evaluation's comparison set:
//
//   - OnDemand — the MiF on-demand preallocation: per-stream current and
//     sequential windows, the layout_miss / pre_alloc_layout triggers,
//     exponential window growth, and a miss threshold that turns
//     preallocation off for random streams (paper §3).
//   - Reservation — the ext4/GPFS-style baseline: one reservation window
//     per file, handed out in arrival order to whichever stream writes
//     next. This is the allocator whose interleaving Figure 1(a) shows.
//   - Vanilla — no preallocation at all; every write allocates near the
//     file tail at request time.
//   - Static — fallocate(2): the whole file is persistently allocated up
//     front, requiring foreknowledge of the file size.
//
// A Policy instance manages one file component (one stripe object on one
// IO server). The embedded-directory half of MiF lives with the metadata
// file system in internal/mdfs; this package is the data path.
package core

import (
	"fmt"
	"sync/atomic"

	"redbud/internal/alloc"
)

// StreamID identifies one write stream. The paper constructs it "by
// combining the client ID and the thread PID on client".
type StreamID struct {
	Client uint32
	PID    uint32
}

// String renders the stream as client.pid.
func (s StreamID) String() string { return fmt.Sprintf("%d.%d", s.Client, s.PID) }

// Window is a preallocation window: a contiguous physical range backing a
// contiguous logical range of the file. Both the current and the sequential
// window of the paper's core data structure have this shape ("a disk block
// number, a file logic block number and length").
type Window struct {
	Disk    int64 // first physical block
	Logical int64 // first file logical block
	Len     int64 // length in blocks
}

// LogicalEnd returns the logical block just past the window.
func (w Window) LogicalEnd() int64 { return w.Logical + w.Len }

// DiskEnd returns the physical block just past the window.
func (w Window) DiskEnd() int64 { return w.Disk + w.Len }

// ContainsLogical reports whether the logical range [l, l+c) lies fully
// inside the window.
func (w Window) ContainsLogical(l, c int64) bool {
	return w.Len > 0 && l >= w.Logical && l+c <= w.LogicalEnd()
}

// PhysicalFor translates a logical block inside the window to its physical
// block.
func (w Window) PhysicalFor(l int64) int64 { return w.Disk + (l - w.Logical) }

// Range returns the window's physical range.
func (w Window) Range() alloc.Range { return alloc.Range{Start: w.Disk, Count: w.Len} }

// Placement is one allocation decision: the physical blocks chosen to back
// the logical range [Logical, Logical+Count). Preallocated marks blocks the
// policy persisted beyond the bytes actually written (unwritten extents).
type Placement struct {
	Logical      int64
	Physical     int64
	Count        int64
	Preallocated bool
}

// BlockSource is the allocator interface the policies drive. It is
// implemented by *alloc.Allocator; tests substitute instrumented fakes.
type BlockSource interface {
	AllocNear(owner alloc.Owner, goal, want int64) (start, got int64, err error)
	AllocExact(owner alloc.Owner, r alloc.Range) error
	ReserveNear(owner alloc.Owner, goal, want int64) (alloc.Range, error)
	Unreserve(owner alloc.Owner, r alloc.Range)
	UnreserveAll(owner alloc.Owner)
	ConvertReserved(owner alloc.Owner, r alloc.Range) error
	Free(r alloc.Range) error
}

var _ BlockSource = (*alloc.Allocator)(nil)

// Policy decides the physical placement of extending writes for one file
// component.
type Policy interface {
	// Name returns the policy's short name as used in benchmark tables.
	Name() string
	// Place chooses physical blocks for the extending write of the
	// logical range [logical, logical+count) by stream. goal is the
	// caller's locality hint, normally the physical end of the file's
	// last extent. The returned slice may reuse a buffer owned by the
	// policy and is only valid until its next Place call; callers that
	// retain placements must copy them.
	Place(stream StreamID, logical, count, goal int64) ([]Placement, error)
	// Close releases any temporary reservations the policy holds.
	// Persistently preallocated blocks stay allocated, as the paper
	// requires ("persistent across reboots").
	Close()
}

// ownerSeq hands out process-unique reservation owners so the windows of
// distinct (file, stream) pairs can never collide in the allocator.
var ownerSeq atomic.Uint64

// nextOwner returns a fresh reservation owner.
func nextOwner() alloc.Owner {
	return alloc.Owner(ownerSeq.Add(1))
}

// allocRun allocates exactly count blocks near goal, in as few contiguous
// runs as the free-space layout allows, and appends the resulting
// placements. It is the shared fallback path of every policy.
func allocRun(src BlockSource, owner alloc.Owner, logical, count, goal int64, out []Placement) ([]Placement, error) {
	for count > 0 {
		start, got, err := src.AllocNear(owner, goal, count)
		if err != nil {
			return out, err
		}
		out = append(out, Placement{Logical: logical, Physical: start, Count: got})
		logical += got
		count -= got
		goal = start + got
	}
	return out, nil
}
