package core

import (
	"testing"
	"testing/quick"

	"redbud/internal/alloc"
	"redbud/internal/sim"
)

// policyUnderTest builds each policy over a fresh allocator.
func policiesUnderTest(src *alloc.Allocator) []Policy {
	return []Policy{
		NewOnDemand(src, DefaultOnDemandConfig()),
		NewReservation(src, 256),
		NewVanilla(src),
	}
}

// TestMappingConsistencyProperty: applying placements with the IO server's
// clipping rule (only unmapped logical blocks take a new mapping), no
// physical block ever backs two different logical positions, and a logical
// block's mapping never silently changes — the invariant the data path's
// integrity rests on.
func TestMappingConsistencyProperty(t *testing.T) {
	f := func(seed uint64, which uint8) bool {
		rng := sim.NewRand(seed)
		src := alloc.New(1<<16, 1<<14)
		p := policiesUnderTest(src)[int(which)%3]
		logToPhys := map[int64]int64{}
		physToLog := map[int64]int64{}
		logicalNext := map[StreamID]int64{}
		for op := 0; op < 120; op++ {
			stream := StreamID{Client: uint32(rng.Intn(4)), PID: uint32(rng.Intn(2))}
			var logical int64
			if rng.Intn(4) == 0 {
				logical = rng.Int63n(1 << 12) // random jump
			} else {
				logical = logicalNext[stream] // sequential continuation
			}
			count := rng.Int63n(8) + 1
			// The IO server only asks for unmapped gaps; emulate by
			// skipping requests whose head is already mapped.
			if _, ok := logToPhys[logical]; ok {
				logicalNext[stream] = logical + count
				continue
			}
			placements, err := p.Place(stream, logical, count, 0)
			if err != nil {
				return false
			}
			for _, pl := range placements {
				for i := int64(0); i < pl.Count; i++ {
					l, ph := pl.Logical+i, pl.Physical+i
					if _, mapped := logToPhys[l]; mapped {
						continue // clipped, as the IO server does
					}
					if prev, used := physToLog[ph]; used && prev != l {
						return false // one physical block, two logical homes
					}
					logToPhys[l] = ph
					physToLog[ph] = l
				}
			}
			logicalNext[stream] = logical + count
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPlacementsCoverRequestProperty: the placements returned for a
// request always cover the requested logical range (they may exceed it for
// promoted windows, never undershoot).
func TestPlacementsCoverRequestProperty(t *testing.T) {
	f := func(seed uint64, which uint8) bool {
		rng := sim.NewRand(seed)
		src := alloc.New(1<<16, 1<<14)
		p := policiesUnderTest(src)[int(which)%3]
		covered := map[int64]bool{} // logical blocks already placed
		for op := 0; op < 80; op++ {
			stream := StreamID{Client: uint32(rng.Intn(3)), PID: 1}
			logical := rng.Int63n(4096)
			count := rng.Int63n(6) + 1
			// Only request never-placed ranges, like the IO server does.
			ok := true
			for b := logical; b < logical+count; b++ {
				if covered[b] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			placements, err := p.Place(stream, logical, count, 0)
			if err != nil {
				return false
			}
			got := map[int64]bool{}
			for _, pl := range placements {
				for b := pl.Logical; b < pl.Logical+pl.Count; b++ {
					got[b] = true
					covered[b] = true
				}
			}
			for b := logical; b < logical+count; b++ {
				if !got[b] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOnDemandWindowInvariantProperty: after any operation sequence, the
// allocator's reservations (the live sequential windows) never cover an
// allocated block — windows sit strictly over free space.
func TestOnDemandWindowInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRand(seed)
		src := alloc.New(1<<15, 1<<13)
		p := NewOnDemand(src, OnDemandConfig{Scale: 2, MaxPreallocBlocks: 128, MissThreshold: 3})
		for op := 0; op < 100; op++ {
			stream := StreamID{Client: uint32(rng.Intn(3)), PID: 1}
			if _, err := p.Place(stream, rng.Int63n(1<<18), rng.Int63n(4)+1, 0); err != nil {
				return false
			}
		}
		// Every reserved range must still be free in the bitmap: if a
		// reserved block were allocated, Reserve/Convert bookkeeping
		// broke. ReserveNear only reserves free space and Convert
		// drops the reservation, so any owner's leftover reservation
		// ranges must be allocatable by that owner.
		total := src.ReservedBlocks()
		p.Close()
		if src.ReservedBlocks() != 0 {
			return false
		}
		_ = total
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
