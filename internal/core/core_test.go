package core

import (
	"testing"

	"redbud/internal/alloc"
	"redbud/internal/extent"
)

// newSrc builds a fresh allocator for policy tests: 1 GiB of 4 KiB blocks
// in 4 groups.
func newSrc() *alloc.Allocator { return alloc.New(262144, 65536) }

// place is a test helper that fails on error.
func place(t *testing.T, p Policy, s StreamID, logical, count, goal int64) []Placement {
	t.Helper()
	out, err := p.Place(s, logical, count, goal)
	if err != nil {
		t.Fatalf("%s.Place(%v, %d, %d): %v", p.Name(), s, logical, count, err)
	}
	// Place reuses its result buffer across calls; keep a copy.
	return append([]Placement(nil), out...)
}

// mapPlacements folds placements into an extent map, clipping out already
// mapped sub-ranges the way the IO server does with promoted windows.
func mapPlacements(t *testing.T, m *extent.Map, ps []Placement) {
	t.Helper()
	for _, pl := range ps {
		logical, count := pl.Logical, pl.Count
		for count > 0 {
			covered := m.LookupRange(logical, count)
			gapEnd := logical + count
			if len(covered) > 0 {
				gapEnd = covered[0].Logical
			}
			if gapEnd > logical {
				n := gapEnd - logical
				off := logical - pl.Logical
				if err := m.Insert(extent.Extent{Logical: logical, Physical: pl.Physical + off, Count: n}); err != nil {
					t.Fatalf("insert: %v", err)
				}
				logical += n
				count -= n
				continue
			}
			// Skip the covered prefix.
			n := covered[0].Count
			logical += n
			count -= n
		}
	}
}

func TestOnDemandSingleSequentialStream(t *testing.T) {
	src := newSrc()
	p := NewOnDemand(src, OnDemandConfig{Scale: 4, MaxPreallocBlocks: 2048, MissThreshold: 4})
	s := StreamID{Client: 1, PID: 1}
	var m extent.Map
	// 256 sequential 8-block writes = 2048 blocks.
	goal := int64(0)
	for i := int64(0); i < 256; i++ {
		ps := place(t, p, s, i*8, 8, goal)
		mapPlacements(t, &m, ps)
		if lp, ok := m.LastPhysical(); ok {
			goal = lp
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// A single sequential stream on an empty device must produce a
	// near-contiguous layout: very few extents.
	if m.Len() > 3 {
		t.Fatalf("sequential stream produced %d extents (%v...), want <= 3", m.Len(), m.Extents()[:3])
	}
	st := p.Stats()
	if st.LayoutMisses != 1 {
		t.Fatalf("LayoutMisses = %d, want 1 (the first extend only)", st.LayoutMisses)
	}
	if st.PreallocHits == 0 {
		t.Fatal("sequential stream should hit pre_alloc_layout")
	}
	if st.StreamsDisabled != 0 {
		t.Fatal("sequential stream must not be disabled")
	}
}

func TestOnDemandFigure3WalkThrough(t *testing.T) {
	// The paper's Figure 3 example: three streams, one-block requests,
	// scale 2. T1: first writes (100, 200, 300) are layout misses. T2:
	// writes 101 and 201 hit pre_alloc_layout. T3: writes 102 and 202
	// hit neither trigger.
	src := newSrc()
	p := NewOnDemand(src, OnDemandConfig{Scale: 2, MaxPreallocBlocks: 2048, MissThreshold: 4})
	p1 := StreamID{Client: 1, PID: 1}
	p2 := StreamID{Client: 2, PID: 1}
	p3 := StreamID{Client: 3, PID: 1}

	// T1
	place(t, p, p1, 100, 1, 0)
	place(t, p, p2, 200, 1, 0)
	place(t, p, p3, 300, 1, 0)
	st := p.Stats()
	if st.LayoutMisses != 3 || st.PreallocHits != 0 {
		t.Fatalf("after T1: misses=%d hits=%d, want 3/0", st.LayoutMisses, st.PreallocHits)
	}

	// T2
	pl1 := place(t, p, p1, 101, 1, 0)
	pl2 := place(t, p, p2, 201, 1, 0)
	st = p.Stats()
	if st.PreallocHits != 2 {
		t.Fatalf("after T2: hits=%d, want 2", st.PreallocHits)
	}
	// The promoted windows are whole preallocated ranges.
	if !pl1[0].Preallocated || !pl2[0].Preallocated {
		t.Fatal("T2 placements should be promoted (preallocated) windows")
	}
	// Window initialized as write_size×2 = 2 blocks at T1; promotion
	// hands over those 2 blocks.
	if pl1[0].Count != 2 || pl1[0].Logical != 101 {
		t.Fatalf("promoted window = %+v, want logical 101 len 2", pl1[0])
	}

	// T3: writes 102, 202 are inside the previous preallocation (current
	// window) — no trigger.
	place(t, p, p1, 102, 1, 0)
	place(t, p, p2, 202, 1, 0)
	st = p.Stats()
	if st.LayoutMisses != 3 || st.PreallocHits != 2 {
		t.Fatalf("after T3: misses=%d hits=%d, want unchanged 3/2", st.LayoutMisses, st.PreallocHits)
	}
	if st.InWindowWrites != 2 {
		t.Fatalf("after T3: in-window writes = %d, want 2", st.InWindowWrites)
	}
}

func TestOnDemandStreamsStayContiguous(t *testing.T) {
	// Three streams extend disjoint regions of a shared file, requests
	// arriving round-robin. Each region must stay physically contiguous
	// — the core claim of on-demand preallocation.
	src := newSrc()
	p := NewOnDemand(src, DefaultOnDemandConfig())
	streams := []StreamID{{1, 1}, {2, 1}, {3, 1}}
	var m extent.Map
	goal := int64(0)
	const regionBlocks = 512
	for i := int64(0); i < regionBlocks; i++ {
		for si, s := range streams {
			logical := int64(si)*regionBlocks + i
			ps := place(t, p, s, logical, 1, goal)
			mapPlacements(t, &m, ps)
		}
		if lp, ok := m.LastPhysical(); ok {
			goal = lp
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Reading any one region sequentially should cross only a handful of
	// extents: window ramp-up from 4 to 2048 blocks covers 512 blocks in
	// ~5 windows.
	for si := range streams {
		got := m.LookupRange(int64(si)*regionBlocks, regionBlocks)
		if len(got) > 8 {
			t.Errorf("region %d fragmented into %d extents, want <= 8", si, len(got))
		}
	}
}

func TestOnDemandRandomStreamDisabled(t *testing.T) {
	src := newSrc()
	cfg := DefaultOnDemandConfig()
	cfg.MissThreshold = 4
	p := NewOnDemand(src, cfg)
	s := StreamID{Client: 1, PID: 9}
	// Scattered single-block writes: every one is a layout miss.
	for i, logical := range []int64{1000, 5000, 50, 9000, 2500, 7777} {
		if _, err := p.Place(s, logical, 1, 0); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	st := p.Stats()
	if st.StreamsDisabled != 1 {
		t.Fatalf("StreamsDisabled = %d, want 1", st.StreamsDisabled)
	}
	// Once disabled, no reservations remain for this file.
	if n := src.ReservedBlocks(); n != 0 {
		t.Fatalf("ReservedBlocks = %d, want 0 after disable", n)
	}
}

func TestOnDemandRandomDoesNotDisturbSequential(t *testing.T) {
	// "preallocation sequence of the sequential stream interposed by
	// random streams is not interrupted."
	src := newSrc()
	p := NewOnDemand(src, DefaultOnDemandConfig())
	seq := StreamID{Client: 1, PID: 1}
	rnd := StreamID{Client: 2, PID: 2}
	var m extent.Map
	randomOffsets := []int64{90000, 95000, 91234, 99999, 93000, 97000, 92000, 96000}
	for i := int64(0); i < 64; i++ {
		ps := place(t, p, seq, i*4, 4, 0)
		mapPlacements(t, &m, ps)
		place(t, p, rnd, randomOffsets[i%8]+i, 1, 0)
	}
	got := m.LookupRange(0, 256)
	if len(got) > 6 {
		t.Fatalf("sequential region fragmented into %d extents by random interposer", len(got))
	}
	st := p.Stats()
	if st.StreamsDisabled != 1 {
		t.Fatalf("StreamsDisabled = %d, want 1 (the random stream)", st.StreamsDisabled)
	}
}

func TestOnDemandWindowRampAndCap(t *testing.T) {
	src := newSrc()
	cfg := OnDemandConfig{Scale: 4, MaxPreallocBlocks: 64, MissThreshold: 4}
	p := NewOnDemand(src, cfg)
	s := StreamID{1, 1}
	var m extent.Map
	var maxPlacement int64
	for i := int64(0); i < 512; i++ {
		ps := place(t, p, s, i, 1, 0)
		mapPlacements(t, &m, ps)
		for _, pl := range ps {
			if pl.Count > maxPlacement {
				maxPlacement = pl.Count
			}
		}
	}
	if maxPlacement > cfg.MaxPreallocBlocks {
		t.Fatalf("placement of %d blocks exceeds MaxPreallocBlocks %d", maxPlacement, cfg.MaxPreallocBlocks)
	}
	if maxPlacement < cfg.MaxPreallocBlocks/2 {
		t.Fatalf("window never ramped near the cap: max placement %d", maxPlacement)
	}
}

func TestOnDemandCloseReleasesReservations(t *testing.T) {
	src := newSrc()
	p := NewOnDemand(src, DefaultOnDemandConfig())
	for c := uint32(1); c <= 4; c++ {
		place(t, p, StreamID{Client: c, PID: 1}, int64(c)*1000, 8, 0)
	}
	if src.ReservedBlocks() == 0 {
		t.Fatal("expected live sequential-window reservations before Close")
	}
	p.Close()
	if n := src.ReservedBlocks(); n != 0 {
		t.Fatalf("ReservedBlocks = %d after Close, want 0", n)
	}
	// Current windows persist: allocated blocks are untouched.
	if src.FreeBlocks() == src.Total() {
		t.Fatal("persistent preallocations must survive Close")
	}
}

func TestReservationArrivalOrderInterleaving(t *testing.T) {
	// Figure 1(a): with per-inode reservation, round-robin arrivals from
	// different streams land physically interleaved in arrival order.
	src := newSrc()
	p := NewReservation(src, 1024)
	s1, s2 := StreamID{1, 1}, StreamID{2, 1}
	a := place(t, p, s1, 100, 1, 0)
	b := place(t, p, s2, 200, 1, 0)
	c := place(t, p, s1, 101, 1, 0)
	d := place(t, p, s2, 201, 1, 0)
	if b[0].Physical != a[0].Physical+1 || c[0].Physical != b[0].Physical+1 || d[0].Physical != c[0].Physical+1 {
		t.Fatalf("arrival order broken: %v %v %v %v", a, b, c, d)
	}
	// Consequence: each stream's logical region is physically
	// discontiguous (stride 2).
	var m extent.Map
	for _, ps := range [][]Placement{a, b, c, d} {
		mapPlacements(t, &m, ps)
	}
	if got := m.LookupRange(100, 2); len(got) != 2 {
		t.Fatalf("stream 1 region should be fragmented, got %v", got)
	}
}

func TestReservationWindowRefill(t *testing.T) {
	src := newSrc()
	p := NewReservation(src, 16)
	s := StreamID{1, 1}
	ps := place(t, p, s, 0, 40, 0) // spans three windows
	var total int64
	for _, pl := range ps {
		total += pl.Count
	}
	if total != 40 {
		t.Fatalf("placed %d blocks, want 40", total)
	}
	p.Close()
	if src.ReservedBlocks() != 0 {
		t.Fatal("Close should drop the unconsumed window")
	}
}

func TestVanillaAllocatesImmediately(t *testing.T) {
	src := newSrc()
	p := NewVanilla(src)
	ps := place(t, p, StreamID{1, 1}, 0, 8, 0)
	if len(ps) != 1 || ps[0].Count != 8 {
		t.Fatalf("placements = %v", ps)
	}
	if src.FreeBlocks() != src.Total()-8 {
		t.Fatal("vanilla must allocate exactly the written blocks")
	}
	if src.ReservedBlocks() != 0 {
		t.Fatal("vanilla must not reserve")
	}
}

func TestStaticFallocateContiguous(t *testing.T) {
	src := newSrc()
	p := NewStatic(src, 4096)
	if err := p.Fallocate(0); err != nil {
		t.Fatal(err)
	}
	runs := p.Placed()
	if len(runs) != 1 || runs[0].Count != 4096 {
		t.Fatalf("fallocate on empty device should be one run, got %v", runs)
	}
	ps := place(t, p, StreamID{1, 1}, 100, 10, 0)
	if len(ps) != 1 || ps[0].Physical != runs[0].Physical+100 {
		t.Fatalf("static placement = %v", ps)
	}
	// Out-of-bounds write fails.
	if _, err := p.Place(StreamID{1, 1}, 4090, 10, 0); err == nil {
		t.Fatal("write past declared size should fail")
	}
}

func TestPlaceRejectsInvalidRanges(t *testing.T) {
	src := newSrc()
	for _, p := range []Policy{
		NewOnDemand(src, DefaultOnDemandConfig()),
		NewReservation(src, 64),
		NewVanilla(src),
		NewStatic(src, 100),
	} {
		if _, err := p.Place(StreamID{1, 1}, -1, 5, 0); err == nil {
			t.Errorf("%s: negative logical accepted", p.Name())
		}
		if _, err := p.Place(StreamID{1, 1}, 0, 0, 0); err == nil {
			t.Errorf("%s: zero count accepted", p.Name())
		}
	}
}
