package core

import (
	"sync"

	"redbud/internal/alloc"
)

// Reservation is the traditional per-inode reservation baseline used by
// ext4, GPFS and CXFS-style allocators: one window per *file*, shared by
// every stream, handed out strictly in arrival order. With concurrent
// writers this is exactly the interleaving of Figure 1(a): "these blocks
// are placed in the reserved space in the order of arrival time".
type Reservation struct {
	src BlockSource
	// windowBlocks is the reservation size in blocks; Figure 6(b) sweeps
	// this parameter ("the allocation size").
	windowBlocks int64

	mu      sync.Mutex
	owner   alloc.Owner
	window  alloc.Range // remaining reserved, unconsumed range
	opened  bool
	scratch []Placement // reused result buffer; valid until the next Place
}

// NewReservation builds the baseline with the given window size in blocks.
func NewReservation(src BlockSource, windowBlocks int64) *Reservation {
	if windowBlocks < 1 {
		panic("core: Reservation window must be >= 1 block")
	}
	return &Reservation{src: src, windowBlocks: windowBlocks, owner: nextOwner()}
}

// Name implements Policy.
func (p *Reservation) Name() string { return "reservation" }

// Place implements Policy. The stream identity is ignored: the reservation
// is per inode, which is precisely why concurrent streams interleave.
func (p *Reservation) Place(_ StreamID, logical, count, goal int64) ([]Placement, error) {
	if count <= 0 || logical < 0 {
		return nil, errInvalidRange(logical, count)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.scratch[:0]
	for count > 0 {
		if p.window.Count == 0 {
			r, err := p.src.ReserveNear(p.owner, goal, p.windowBlocks)
			if err != nil {
				// Device too fragmented or full for a window:
				// degrade to plain allocation.
				out, err = allocRun(p.src, p.owner, logical, count, goal, out)
				p.scratch = out
				return out, err
			}
			p.window = r
			p.opened = true
		}
		take := count
		if take > p.window.Count {
			take = p.window.Count
		}
		chunk := alloc.Range{Start: p.window.Start, Count: take}
		if err := p.src.ConvertReserved(p.owner, chunk); err != nil {
			p.scratch = out
			return out, err
		}
		out = append(out, Placement{Logical: logical, Physical: chunk.Start, Count: take})
		logical += take
		count -= take
		goal = chunk.End()
		p.window.Start += take
		p.window.Count -= take
	}
	p.scratch = out
	return out, nil
}

// Close implements Policy, releasing the unconsumed window.
func (p *Reservation) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.window.Count > 0 {
		p.src.Unreserve(p.owner, p.window)
		p.window = alloc.Range{}
	}
}

// Vanilla performs no preallocation at all: every extending write allocates
// near the file tail at request time, and nothing shields the region from
// other writers. Table I labels this mode "Vanilla".
type Vanilla struct {
	src BlockSource
}

// NewVanilla builds the no-preallocation policy.
func NewVanilla(src BlockSource) *Vanilla { return &Vanilla{src: src} }

// Name implements Policy.
func (p *Vanilla) Name() string { return "vanilla" }

// Place implements Policy.
func (p *Vanilla) Place(_ StreamID, logical, count, goal int64) ([]Placement, error) {
	if count <= 0 || logical < 0 {
		return nil, errInvalidRange(logical, count)
	}
	return allocRun(p.src, 0, logical, count, goal, nil)
}

// Close implements Policy.
func (p *Vanilla) Close() {}

// Static is fallocate(2)-style persistent preallocation: the first Place
// call allocates the entire declared file size contiguously, and every
// write maps inside it. It requires the application "to have sufficient
// foreknowledge of how much space the file will need" — the size is fixed
// at construction.
type Static struct {
	src        BlockSource
	sizeBlocks int64

	mu      sync.Mutex
	placed  []Placement // the fallocated runs, logical-ordered
	scratch []Placement // reused result buffer; valid until the next Place
}

// NewStatic builds the policy for a file of sizeBlocks blocks.
func NewStatic(src BlockSource, sizeBlocks int64) *Static {
	if sizeBlocks < 1 {
		panic("core: Static size must be >= 1 block")
	}
	return &Static{src: src, sizeBlocks: sizeBlocks}
}

// Name implements Policy.
func (p *Static) Name() string { return "static" }

// Fallocate performs the up-front allocation near goal. It is idempotent;
// Place calls it implicitly on first use.
func (p *Static) Fallocate(goal int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fallocateLocked(goal)
}

func (p *Static) fallocateLocked(goal int64) error {
	if p.placed != nil {
		return nil
	}
	out, err := allocRun(p.src, 0, 0, p.sizeBlocks, goal, nil)
	if err != nil {
		return err
	}
	for i := range out {
		out[i].Preallocated = true
	}
	p.placed = out
	return nil
}

// Place implements Policy. Writes beyond the fallocated size fail: the
// static policy models an application that declared the file size exactly.
func (p *Static) Place(_ StreamID, logical, count, goal int64) ([]Placement, error) {
	if count <= 0 || logical < 0 {
		return nil, errInvalidRange(logical, count)
	}
	if logical+count > p.sizeBlocks {
		return nil, &InvalidRangeError{Logical: logical, Count: count}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.fallocateLocked(goal); err != nil {
		return nil, err
	}
	out := p.scratch[:0]
	end := logical + count
	for _, run := range p.placed {
		runEnd := run.Logical + run.Count
		if runEnd <= logical || run.Logical >= end {
			continue
		}
		lo, hi := run.Logical, runEnd
		if lo < logical {
			lo = logical
		}
		if hi > end {
			hi = end
		}
		out = append(out, Placement{
			Logical:      lo,
			Physical:     run.Physical + (lo - run.Logical),
			Count:        hi - lo,
			Preallocated: true,
		})
	}
	p.scratch = out
	return out, nil
}

// Placed returns the fallocated runs; it is a test and reporting hook.
func (p *Static) Placed() []Placement {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Placement, len(p.placed))
	copy(out, p.placed)
	return out
}

// Close implements Policy.
func (p *Static) Close() {}

// Compile-time interface checks.
var (
	_ Policy = (*OnDemand)(nil)
	_ Policy = (*Reservation)(nil)
	_ Policy = (*Vanilla)(nil)
	_ Policy = (*Static)(nil)
)
