package core

import (
	"sort"
	"sync"

	"redbud/internal/alloc"
)

// OnDemandConfig holds the tunables of the on-demand preallocation
// algorithm (paper §3.C).
type OnDemandConfig struct {
	// Scale multiplies the window size at initialization
	// (write_size × Scale) and at each reiterative preallocation
	// (prev_size × Scale). The paper uses 2 or 4.
	Scale int64
	// MaxPreallocBlocks caps the sequential-window size
	// (max_preallocation_size, "tunable").
	MaxPreallocBlocks int64
	// MissThreshold is the layout_miss count at which a stream is
	// recognized as "workload other than a sequential one" and its
	// preallocation is turned off.
	MissThreshold int
}

// DefaultOnDemandConfig returns the configuration used throughout the
// evaluation: scale 4, 8 MiB window cap (2048 × 4 KiB blocks), and a miss
// threshold of 4.
func DefaultOnDemandConfig() OnDemandConfig {
	return OnDemandConfig{Scale: 4, MaxPreallocBlocks: 2048, MissThreshold: 4}
}

// OnDemandStats counts trigger activity for one file component.
type OnDemandStats struct {
	// LayoutMisses counts layout_miss trigger hits (including each
	// stream's first extend).
	LayoutMisses int64
	// PreallocHits counts pre_alloc_layout trigger hits (window
	// promotions).
	PreallocHits int64
	// InWindowWrites counts writes served from the current window with
	// no trigger hit.
	InWindowWrites int64
	// StreamsDisabled counts streams whose preallocation was turned off
	// by the miss threshold.
	StreamsDisabled int64
	// PreallocatedBlocks counts blocks persisted ahead of the data
	// actually written.
	PreallocatedBlocks int64
}

// streamState is the per-stream core data structure: the current window,
// the sequential window, and the miss counter.
type streamState struct {
	owner    alloc.Owner
	cur      Window // persistently preallocated
	seq      Window // temporarily reserved prediction range
	seqRange alloc.Range
	misses   int
	disabled bool
	winSize  int64 // size of the most recent preallocation
}

// OnDemand is the MiF on-demand preallocation policy for one file
// component. It is safe for concurrent use: the file allocator "maintains
// both windows for each stream and any write workloads from different
// streams are thus not interleaved".
type OnDemand struct {
	cfg OnDemandConfig
	src BlockSource

	mu      sync.Mutex
	streams map[StreamID]*streamState
	stats   OnDemandStats
	scratch []Placement // reused result buffer; valid until the next Place
}

// NewOnDemand builds the policy over the given block source. Invalid
// configurations panic: the policy is constructed at mount/format time
// where a bad tunable is an operator bug.
func NewOnDemand(src BlockSource, cfg OnDemandConfig) *OnDemand {
	if cfg.Scale < 2 {
		panic("core: OnDemand Scale must be >= 2")
	}
	if cfg.MaxPreallocBlocks < 1 {
		panic("core: OnDemand MaxPreallocBlocks must be >= 1")
	}
	if cfg.MissThreshold < 1 {
		panic("core: OnDemand MissThreshold must be >= 1")
	}
	return &OnDemand{cfg: cfg, src: src, streams: make(map[StreamID]*streamState)}
}

// Name implements Policy.
func (p *OnDemand) Name() string { return "on-demand" }

// Stats returns a snapshot of the trigger counters.
func (p *OnDemand) Stats() OnDemandStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Streams returns the number of streams the policy has seen.
func (p *OnDemand) Streams() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.streams)
}

// Place implements Policy. It runs the trigger-hit algorithm of Figure 2
// over the logical range, splitting the request where it straddles window
// boundaries.
func (p *OnDemand) Place(stream StreamID, logical, count, goal int64) ([]Placement, error) {
	if count <= 0 || logical < 0 {
		return nil, errInvalidRange(logical, count)
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	st, ok := p.streams[stream]
	if !ok {
		st = &streamState{owner: nextOwner()}
		p.streams[stream] = st
	}

	out := p.scratch[:0]
	for count > 0 {
		prev := len(out)
		var n int64
		var err error
		out, n, err = p.placeOnce(st, out, logical, count, goal)
		if err != nil {
			p.scratch = out
			return out, err
		}
		logical += n
		count -= n
		if len(out) > prev {
			last := out[len(out)-1]
			goal = last.Physical + last.Count
		}
	}
	p.scratch = out
	return out, nil
}

// placeOnce handles the largest prefix of [logical, logical+count) that
// falls into a single trigger case, appending the placements to out and
// returning it plus the number of logical blocks consumed. Callers hold
// p.mu.
func (p *OnDemand) placeOnce(st *streamState, out []Placement, logical, count, goal int64) ([]Placement, int64, error) {
	// Case 1: inside the current window — previous preallocation covers
	// the write; neither trigger hits.
	if st.cur.ContainsLogical(logical, 1) {
		n := count
		if rem := st.cur.LogicalEnd() - logical; rem < n {
			n = rem
		}
		p.stats.InWindowWrites++
		return append(out, Placement{Logical: logical, Physical: st.cur.PhysicalFor(logical), Count: n}), n, nil
	}

	// Case 2: inside the sequential window — pre_alloc_layout. The
	// stream is sequential: promote the sequential window to current and
	// reserve a larger one further on. The placement covers the *whole*
	// promoted window — the blocks are persistently preallocated, so the
	// caller maps them as unwritten extents the way ext4 does; writes
	// that later land inside them need no further allocation.
	if st.seq.ContainsLogical(logical, 1) && !st.disabled {
		p.stats.PreallocHits++
		// A sequential hit clears the miss count: the threshold
		// recognizes *consecutively* missing streams as random, so a
		// bursty-but-sequential pattern (BTIO cells) keeps its
		// preallocation.
		st.misses = 0
		if err := p.promoteLocked(st); err != nil {
			return nil, 0, err
		}
		n := count
		if rem := st.cur.LogicalEnd() - logical; rem < n {
			n = rem
		}
		return append(out, Placement{
			Logical:      st.cur.Logical,
			Physical:     st.cur.Disk,
			Count:        st.cur.Len,
			Preallocated: true,
		}), n, nil
	}

	// Case 3: layout_miss — first extend or an out-of-window write.
	p.stats.LayoutMisses++
	st.misses++
	if !st.disabled && st.misses >= p.cfg.MissThreshold && st.seq.Len > 0 {
		// Recognized as a workload other than sequential: turn the
		// preallocation off immediately.
		st.disabled = true
		p.stats.StreamsDisabled++
		p.src.UnreserveAll(st.owner)
		st.seq = Window{}
		st.seqRange = alloc.Range{}
	}

	if st.disabled {
		out, err := allocRun(p.src, st.owner, logical, count, goal, out)
		return out, count, err
	}

	// Allocate the written blocks themselves, then initiate the
	// sequential window right after them.
	out, err := allocRun(p.src, st.owner, logical, count, goal, out)
	if err != nil {
		return out, count, err
	}
	// The current window becomes the final allocated run (with a
	// fragmented allocation, only the last run can seed contiguous
	// growth).
	last := out[len(out)-1]
	st.cur = Window{Disk: last.Physical, Logical: last.Logical, Len: last.Count}
	st.winSize = p.clampWindow(count * p.cfg.Scale)
	p.reserveSeqLocked(st)
	return out, count, nil
}

// promoteLocked converts the sequential window into the current window
// (persisting its blocks) and reserves the next, larger sequential window.
// Callers hold p.mu.
func (p *OnDemand) promoteLocked(st *streamState) error {
	if err := p.src.ConvertReserved(st.owner, st.seqRange); err != nil {
		return err
	}
	p.stats.PreallocatedBlocks += st.seq.Len
	st.cur = st.seq
	st.seq = Window{}
	st.seqRange = alloc.Range{}
	st.winSize = p.clampWindow(st.winSize * p.cfg.Scale)
	p.reserveSeqLocked(st)
	return nil
}

// reserveSeqLocked opens a new sequential window of st.winSize blocks,
// logically continuing the current window and physically as near its end as
// the free space allows. A failed reservation (device full) leaves the
// stream with no sequential window; subsequent writes fall back to plain
// allocation via layout_miss. Callers hold p.mu.
func (p *OnDemand) reserveSeqLocked(st *streamState) {
	r, err := p.src.ReserveNear(st.owner, st.cur.DiskEnd(), st.winSize)
	if err != nil {
		st.seq = Window{}
		st.seqRange = alloc.Range{}
		return
	}
	st.seq = Window{Disk: r.Start, Logical: st.cur.LogicalEnd(), Len: r.Count}
	st.seqRange = r
}

// clampWindow bounds a window size to [1, MaxPreallocBlocks].
func (p *OnDemand) clampWindow(n int64) int64 {
	if n < 1 {
		n = 1
	}
	if n > p.cfg.MaxPreallocBlocks {
		n = p.cfg.MaxPreallocBlocks
	}
	return n
}

// Close implements Policy: it drops every stream's sequential-window
// reservation. Current windows persist — their blocks are allocated on
// disk and survive reboots by design.
func (p *OnDemand) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Deterministic release order keeps simulated allocator traces
	// reproducible under concurrent closes.
	ids := make([]StreamID, 0, len(p.streams))
	for id := range p.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		return a.PID < b.PID
	})
	for _, id := range ids {
		st := p.streams[id]
		p.src.UnreserveAll(st.owner)
		st.seq = Window{}
		st.seqRange = alloc.Range{}
	}
}

// errInvalidRange builds the shared invalid-argument error.
func errInvalidRange(logical, count int64) error {
	return &InvalidRangeError{Logical: logical, Count: count}
}

// InvalidRangeError reports a Place call with a non-positive count or
// negative offset.
type InvalidRangeError struct {
	Logical int64
	Count   int64
}

// Error implements error.
func (e *InvalidRangeError) Error() string {
	return "core: invalid placement range"
}
