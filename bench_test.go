package redbud_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design knobs DESIGN.md calls out. The metrics
// that matter are *simulated* (MB/s of the modeled disks, extent counts,
// disk requests); they are attached to each benchmark via ReportMetric, so
// `go test -bench=. -benchmem` regenerates the paper's numbers alongside
// the harness cost.

import (
	"fmt"
	"testing"

	"redbud/internal/mdfs"
	"redbud/internal/pfs"
	"redbud/internal/workload"
)

// fig6FS is the 5-disk micro-benchmark mount.
func fig6FS(policy pfs.PolicyKind) pfs.Config {
	cfg := pfs.MiF(5).WithPolicy(policy)
	cfg.ReservationWindow = 2048
	return cfg
}

// fig7FS is the 8-disk macro-benchmark mount.
func fig7FS(policy pfs.PolicyKind) pfs.Config {
	cfg := pfs.MiF(8).WithPolicy(policy)
	cfg.ReservationWindow = 2048
	return cfg
}

// BenchmarkFig6a regenerates Figure 6(a): micro-benchmark phase-2
// throughput per policy and stream count.
func BenchmarkFig6a(b *testing.B) {
	for _, clients := range []int{8, 12, 16} {
		for _, policy := range []pfs.PolicyKind{pfs.PolicyReservation, pfs.PolicyStatic, pfs.PolicyOnDemand} {
			b.Run(fmt.Sprintf("streams=%d/%s", clients*4, policy), func(b *testing.B) {
				var last workload.MicroResult
				for i := 0; i < b.N; i++ {
					res, err := workload.RunMicro(fig6FS(policy), workload.DefaultMicroConfig(clients))
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.ReadMBps, "sim-read-MB/s")
				b.ReportMetric(float64(last.Extents), "extents")
			})
		}
	}
}

// BenchmarkFig6b regenerates Figure 6(b): the impact of the allocation
// size at 32 processes.
func BenchmarkFig6b(b *testing.B) {
	for _, req := range []int64{1, 4, 16} {
		for _, policy := range []pfs.PolicyKind{pfs.PolicyReservation, pfs.PolicyOnDemand} {
			b.Run(fmt.Sprintf("alloc=%dKiB/%s", req*4, policy), func(b *testing.B) {
				var last workload.MicroResult
				for i := 0; i < b.N; i++ {
					cfg := fig6FS(policy)
					cfg.ReservationWindow = req * 16
					mc := workload.DefaultMicroConfig(8)
					mc.RequestBlocks = req
					res, err := workload.RunMicro(cfg, mc)
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.ReadMBps, "sim-read-MB/s")
			})
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: IOR and BTIO, collective and
// non-collective, per policy.
func BenchmarkFig7(b *testing.B) {
	for _, app := range []string{"IOR", "BTIO"} {
		for _, collective := range []bool{false, true} {
			for _, policy := range []pfs.PolicyKind{pfs.PolicyReservation, pfs.PolicyOnDemand} {
				name := fmt.Sprintf("%s/collective=%v/%s", app, collective, policy)
				b.Run(name, func(b *testing.B) {
					var last workload.MacroResult
					for i := 0; i < b.N; i++ {
						var res workload.MacroResult
						var err error
						if app == "IOR" {
							ic := workload.DefaultIORConfig(64)
							ic.Collective = collective
							res, err = workload.RunIOR(fig7FS(policy), ic)
						} else {
							bc := workload.DefaultBTIOConfig(64)
							bc.Collective = collective
							res, err = workload.RunBTIO(fig7FS(policy), bc)
						}
						if err != nil {
							b.Fatal(err)
						}
						last = res
					}
					b.ReportMetric(last.Throughput, "sim-MB/s")
					b.ReportMetric(float64(last.Extents), "extents")
				})
			}
		}
	}
}

// BenchmarkTable1 regenerates Table I: segment counts and MDS CPU
// utilization per policy (non-collective, with interference traffic).
func BenchmarkTable1(b *testing.B) {
	for _, policy := range []pfs.PolicyKind{pfs.PolicyVanilla, pfs.PolicyReservation, pfs.PolicyOnDemand} {
		for _, app := range []string{"IOR", "BTIO"} {
			b.Run(fmt.Sprintf("%s/%s", policy, app), func(b *testing.B) {
				var last workload.MacroResult
				for i := 0; i < b.N; i++ {
					var res workload.MacroResult
					var err error
					if app == "IOR" {
						ic := workload.DefaultIORConfig(64)
						ic.Interference = true
						res, err = workload.RunIOR(fig7FS(policy), ic)
					} else {
						res, err = workload.RunBTIO(fig7FS(policy), workload.DefaultBTIOConfig(64))
					}
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(float64(last.Extents), "segments")
				b.ReportMetric(last.MDSCPU, "mds-cpu-%")
			})
		}
	}
}

// BenchmarkFig8 regenerates Figure 8: the Metarates workloads per MDS
// configuration.
func BenchmarkFig8(b *testing.B) {
	systems := []struct {
		name   string
		layout mdfs.Layout
		htree  bool
	}{
		{"normal", mdfs.LayoutNormal, false},
		{"lustre-like", mdfs.LayoutNormal, true},
		{"embedded", mdfs.LayoutEmbedded, false},
	}
	for _, sys := range systems {
		b.Run(sys.name, func(b *testing.B) {
			var last workload.MetaratesResult
			for i := 0; i < b.N; i++ {
				cfg := workload.DefaultMetaratesConfig(sys.layout)
				cfg.Htree = sys.htree
				res, err := workload.RunMetarates(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Create.OpsPerSec, "create-ops/s")
			b.ReportMetric(last.Utime.OpsPerSec, "utime-ops/s")
			b.ReportMetric(last.Readdir.OpsPerSec, "readdir-ops/s")
			b.ReportMetric(last.Delete.OpsPerSec, "delete-ops/s")
			b.ReportMetric(float64(last.Readdir.DiskRequests), "readdir-req")
		})
	}
}

// BenchmarkFig9 regenerates Figure 9: aging impact on creation and
// deletion.
func BenchmarkFig9(b *testing.B) {
	for _, layout := range []mdfs.Layout{mdfs.LayoutNormal, mdfs.LayoutEmbedded} {
		for _, util := range []float64{0.1, 0.8} {
			b.Run(fmt.Sprintf("%s/util=%.0f%%", layout, util*100), func(b *testing.B) {
				var last workload.AgingResult
				for i := 0; i < b.N; i++ {
					res, err := workload.RunAging(workload.DefaultAgingConfig(layout, util))
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.CreatePerSec, "create-ops/s")
				b.ReportMetric(last.DeletePerSec, "delete-ops/s")
			})
		}
	}
}

// BenchmarkFig10 regenerates Figure 10: PostMark and the application mix.
func BenchmarkFig10(b *testing.B) {
	configs := []func(int) pfs.Config{pfs.RedbudOrig, pfs.MiF}
	for _, mk := range configs {
		name := mk(4).Name
		b.Run("PostMark/"+name, func(b *testing.B) {
			var last workload.AppResult
			for i := 0; i < b.N; i++ {
				res, err := workload.RunPostMark(mk(4), workload.DefaultPostMarkConfig())
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Elapsed)/1e9, "sim-seconds")
		})
		b.Run("KernelTree/"+name, func(b *testing.B) {
			var last workload.KernelTreeResult
			for i := 0; i < b.N; i++ {
				res, err := workload.RunKernelTree(mk(4), workload.DefaultKernelTreeConfig())
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.Tar.Elapsed)/1e9, "tar-s")
			b.ReportMetric(float64(last.Make.Elapsed)/1e9, "make-s")
			b.ReportMetric(float64(last.MakeClean.Elapsed)/1e9, "clean-s")
		})
	}
}

// BenchmarkCache measures the client-cache experiment (both profiles'
// off/on arms, the same sequence `mifbench cache` runs).
func BenchmarkCache(b *testing.B) {
	for _, mk := range []func(int) pfs.Config{
		func(n int) pfs.Config { return pfs.MiF(n).WithPolicy(pfs.PolicyVanilla) },
		pfs.MiF,
	} {
		cfg := mk(5)
		b.Run(cfg.Name, func(b *testing.B) {
			var last workload.CacheBenchResult
			for i := 0; i < b.N; i++ {
				res, err := workload.RunCacheBench(mk(5), workload.DefaultCacheBenchConfig())
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(last.On.WriteRPCs), "write-rpcs")
			b.ReportMetric(last.On.Pass2MBps, "sim-reread-MB/s")
		})
	}
}

// BenchmarkFailover measures the replication experiment: 3-way-replicated
// writes with one OST blackholed midway, read-back under steering, and the
// background re-replication drain.
func BenchmarkFailover(b *testing.B) {
	var last workload.FailoverBenchResult
	for i := 0; i < b.N; i++ {
		res, err := workload.RunFailoverBench(pfs.MiF(6), workload.DefaultFailoverBenchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.WriteMBps, "sim-write-MB/s")
	b.ReportMetric(float64(last.Stats.Failovers), "failovers")
}

// BenchmarkAblationWindowScale sweeps the on-demand window growth factor.
func BenchmarkAblationWindowScale(b *testing.B) {
	for _, scale := range []int64{2, 4, 8} {
		b.Run(fmt.Sprintf("scale=%d", scale), func(b *testing.B) {
			var last workload.MicroResult
			for i := 0; i < b.N; i++ {
				cfg := fig6FS(pfs.PolicyOnDemand)
				cfg.OnDemand.Scale = scale
				res, err := workload.RunMicro(cfg, workload.DefaultMicroConfig(16))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.ReadMBps, "sim-read-MB/s")
			b.ReportMetric(float64(last.Extents), "extents")
		})
	}
}

// BenchmarkAblationMaxPrealloc sweeps max_preallocation_size.
func BenchmarkAblationMaxPrealloc(b *testing.B) {
	for _, capBlocks := range []int64{64, 512, 2048, 8192} {
		b.Run(fmt.Sprintf("cap=%dKiB", capBlocks*4), func(b *testing.B) {
			var last workload.MicroResult
			for i := 0; i < b.N; i++ {
				cfg := fig6FS(pfs.PolicyOnDemand)
				cfg.OnDemand.MaxPreallocBlocks = capBlocks
				res, err := workload.RunMicro(cfg, workload.DefaultMicroConfig(16))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.ReadMBps, "sim-read-MB/s")
			b.ReportMetric(float64(last.Extents), "extents")
		})
	}
}

// BenchmarkAblationMissThreshold sweeps the random-stream shutoff.
func BenchmarkAblationMissThreshold(b *testing.B) {
	for _, th := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("threshold=%d", th), func(b *testing.B) {
			var last workload.MicroResult
			for i := 0; i < b.N; i++ {
				cfg := fig6FS(pfs.PolicyOnDemand)
				cfg.OnDemand.MissThreshold = th
				res, err := workload.RunMicro(cfg, workload.DefaultMicroConfig(16))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.ReadMBps, "sim-read-MB/s")
		})
	}
}

// BenchmarkAblationSpill compares embedded directories with and without
// spill-block preallocation for fragmented files.
func BenchmarkAblationSpill(b *testing.B) {
	for _, degree := range []float64{1e9, 4} { // effectively-off vs paper default
		name := "prealloc=on"
		if degree > 1e6 {
			name = "prealloc=off"
		}
		b.Run(name, func(b *testing.B) {
			var last workload.MetaratesResult
			for i := 0; i < b.N; i++ {
				cfg := workload.DefaultMetaratesConfig(mdfs.LayoutEmbedded)
				cfg.Clients = 4
				cfg.FilesPerDir = 1500
				cfg.SpillDegree = degree
				res, err := workload.RunMetarates(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Create.OpsPerSec, "create-ops/s")
		})
	}
}

// BenchmarkAblationDelayedAlloc compares delayed allocation (ext4/XFS
// style, §2 related work) against on-demand preallocation as the fsync
// interval shrinks — the paper's argument that delayed allocation "does
// not fit application with explicit sync requests well" while on-demand
// needs no buffering assumption.
func BenchmarkAblationDelayedAlloc(b *testing.B) {
	for _, fsyncEvery := range []int64{0, 64, 4} {
		for _, delayed := range []bool{true, false} {
			name := fmt.Sprintf("fsync=%d/", fsyncEvery)
			if delayed {
				name += "delayed-alloc"
			} else {
				name += "on-demand"
			}
			b.Run(name, func(b *testing.B) {
				var extents int
				var mbps float64
				for i := 0; i < b.N; i++ {
					cfg := fig6FS(pfs.PolicyOnDemand)
					if delayed {
						cfg = fig6FS(pfs.PolicyVanilla)
						cfg.OST.DelayedAllocation = true
					}
					e, m, err := workload.RunSyncPressure(cfg, fsyncEvery)
					if err != nil {
						b.Fatal(err)
					}
					extents, mbps = e, m
				}
				b.ReportMetric(float64(extents), "extents")
				b.ReportMetric(mbps, "sim-read-MB/s")
			})
		}
	}
}

// BenchmarkAblationElevator sweeps the elevator reorder window on the
// reservation layout's read path.
func BenchmarkAblationElevator(b *testing.B) {
	for _, depth := range []int{1, 16, 64, 0} {
		name := fmt.Sprintf("window=%d", depth)
		if depth == 0 {
			name = "window=unbounded"
		}
		b.Run(name, func(b *testing.B) {
			var last workload.MicroResult
			for i := 0; i < b.N; i++ {
				cfg := fig6FS(pfs.PolicyReservation)
				cfg.OST.QueueDepth = depth
				res, err := workload.RunMicro(cfg, workload.DefaultMicroConfig(16))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.ReadMBps, "sim-read-MB/s")
		})
	}
}
