package redbud_test

// Allocation ceilings for the hot benchmarks. The zero-alloc audit (PR 8)
// interned telemetry label keys, pooled RPC request messages, and moved
// the extent/stripe lookups onto reusable scratch slices; these ceilings
// keep those wins from silently eroding. Each case executes one full
// workload run — the same shapes BenchmarkFig6a, BenchmarkCache and
// BenchmarkFailover iterate — and fails if the allocation count exceeds a
// ceiling set ~30% above the measured post-audit cost (headroom for GC
// timing flushing the sync.Pools mid-run). `go test -bench=. -benchmem`
// reports the same quantity as allocs/op for trend inspection.

import (
	"testing"

	"redbud/internal/pfs"
	"redbud/internal/workload"
)

func TestAllocCeilings(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	cases := []struct {
		name    string
		ceiling float64
		run     func() error
	}{
		{"fig6a", 10_500, func() error {
			_, err := workload.RunMicro(fig6FS(pfs.PolicyOnDemand), workload.DefaultMicroConfig(8))
			return err
		}},
		{"cache", 20_000, func() error {
			_, err := workload.RunCacheBench(pfs.MiF(5), workload.DefaultCacheBenchConfig())
			return err
		}},
		{"failover", 33_000, func() error {
			_, err := workload.RunFailoverBench(pfs.MiF(6), workload.DefaultFailoverBenchConfig())
			return err
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var err error
			allocs := testing.AllocsPerRun(1, func() {
				if e := c.run(); e != nil {
					err = e
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: %.0f allocs/run (ceiling %.0f)", c.name, allocs, c.ceiling)
			if allocs > c.ceiling {
				t.Errorf("%s allocates %.0f objects/run, ceiling %.0f — the zero-alloc audit regressed",
					c.name, allocs, c.ceiling)
			}
		})
	}
}
