// Package redbud is the root of the MiF reproduction: a pure-Go,
// simulation-backed implementation of the Redbud block-based parallel file
// system and the two MiF techniques — on-demand preallocation and embedded
// directories — from "MiF: Mitigating the intra-file Fragmentation in
// parallel file system" (ICPP 2011).
//
// The library lives under internal/ (see DESIGN.md for the system
// inventory); cmd/mifbench regenerates every figure and table of the
// paper's evaluation, and bench_test.go exposes the same experiments as Go
// benchmarks.
package redbud
